#include "core/profile.hh"

#include <algorithm>
#include <iomanip>
#include <tuple>

namespace psync {
namespace core {

namespace {

using Span = TraceRecorder::OpSpan;
using Edge = TraceRecorder::WaitEdge;
using SyncEvent = TraceRecorder::SyncOpEvent;
using Segment = CriticalPathProfile::Segment;
using SegmentKind = CriticalPathProfile::SegmentKind;

/** Must match what sim::Memory reports busy intervals under. */
constexpr const char *kModuleResource = "memory.module";

const char *
segmentKindName(SegmentKind kind)
{
    switch (kind) {
      case SegmentKind::op:
        return "op";
      case SegmentKind::wait:
        return "wait";
      case SegmentKind::dispatch:
        return "dispatch";
      case SegmentKind::start:
        return "start";
    }
    return "?";
}

/** Op kinds whose `var` field names a sync variable. */
bool
spanHasVar(ir::OpKind kind)
{
    switch (kind) {
      case ir::OpKind::syncWaitGE:
      case ir::OpKind::syncWrite:
      case ir::OpKind::syncFetchInc:
      case ir::OpKind::pcMark:
      case ir::OpKind::pcTransfer:
      case ir::OpKind::keyedRead:
      case ir::OpKind::keyedWrite:
      case ir::OpKind::ctrBarrier:
        return true;
      default:
        return false;
    }
}

/** Op kinds that can have produced the value a waiter saw. */
bool
isSyncWriterKind(ir::OpKind kind)
{
    switch (kind) {
      case ir::OpKind::syncWrite:
      case ir::OpKind::syncFetchInc:
      case ir::OpKind::pcMark:
      case ir::OpKind::pcTransfer:
      case ir::OpKind::ctrBarrier:
      case ir::OpKind::keyedRead:
      case ir::OpKind::keyedWrite:
        return true;
      default:
        return false;
    }
}

/** Sync-var event names that commit a new value (vs. observe one). */
bool
isCommitOp(const std::string &op)
{
    return op == "write" || op == "broadcast" || op == "rmw" ||
           op == "keyed" || op == "coalesced";
}

} // namespace

CriticalPathProfile
buildCriticalPathProfile(const TraceRecorder &rec,
                         sim::Tick run_cycles, sim::Tick bound_cycles)
{
    CriticalPathProfile prof;
    prof.boundCycles = bound_cycles;

    // --- Latency histograms (independent of the path walk) ---
    for (const auto &e : rec.waitEdges()) {
        prof.waitAll.record(e.cycles());
        prof.waitByVar[e.var].record(e.cycles());
    }
    // Key by (proc, op id, completion tick): op ids restart at 1
    // per program, so the id alone is ambiguous across program
    // shapes (init vs. main loop, branch variants). The blocking
    // op's span ends exactly when its site edge does.
    std::map<std::tuple<sim::ProcId, std::uint32_t, sim::Tick>,
             ir::OpKind>
        kind_of;
    for (const auto &s : rec.opSpans())
        kind_of.emplace(std::make_tuple(s.who, s.opId, s.end),
                        s.kind);
    for (const auto &e : rec.waitSiteEdges()) {
        auto it = kind_of.find(
            std::make_tuple(e.who, e.opId, e.end));
        const char *name = it != kind_of.end()
                               ? ir::opKindName(it->second)
                               : "unknown";
        prof.waitByKind[name].record(e.cycles());
    }

    const auto &spans = rec.opSpans();
    if (spans.empty() || run_cycles == 0)
        return prof;

    // --- Per-processor indices ---
    sim::ProcId max_proc = 0;
    for (const auto &s : spans)
        max_proc = std::max(max_proc, s.who);
    for (const auto &e : rec.waitEdges())
        max_proc = std::max(max_proc, e.who);
    for (const auto &p : rec.phases())
        max_proc = std::max(max_proc, p.who);
    const std::size_t np = static_cast<std::size_t>(max_proc) + 1;

    std::vector<std::vector<const Span *>> proc_spans(np);
    for (const auto &s : spans)
        proc_spans[s.who].push_back(&s);
    for (auto &v : proc_spans) {
        std::stable_sort(v.begin(), v.end(),
                         [](const Span *a, const Span *b) {
                             return a->end < b->end;
                         });
    }

    std::vector<std::vector<const Edge *>> proc_edges(np);
    for (const auto &e : rec.waitEdges())
        proc_edges[e.who].push_back(&e);
    for (auto &v : proc_edges) {
        std::stable_sort(v.begin(), v.end(),
                         [](const Edge *a, const Edge *b) {
                             return a->end < b->end;
                         });
    }

    std::map<sim::SyncVarId, std::vector<const SyncEvent *>>
        var_events;
    for (const auto &e : rec.syncOpEvents()) {
        if (isCommitOp(e.op))
            var_events[e.var].push_back(&e);
    }
    for (auto &entry : var_events) {
        std::stable_sort(entry.second.begin(), entry.second.end(),
                         [](const SyncEvent *a, const SyncEvent *b) {
                             return a->at < b->at;
                         });
    }

    // --- Lookup helpers over the indices ---
    // Latest wait edge of `p` satisfied inside (lo, hi].
    auto latest_edge_in = [&](sim::ProcId p, sim::Tick lo,
                              sim::Tick hi) -> const Edge * {
        const auto &v = proc_edges[p];
        auto it = std::upper_bound(
            v.begin(), v.end(), hi,
            [](sim::Tick t, const Edge *e) { return t < e->end; });
        if (it == v.begin())
            return nullptr;
        const Edge *e = *(it - 1);
        return e->end > lo ? e : nullptr;
    };

    // Latest span of `p` completing at or before `t`.
    auto latest_span_before = [&](sim::ProcId p,
                                  sim::Tick t) -> const Span * {
        const auto &v = proc_spans[p];
        auto it = std::upper_bound(
            v.begin(), v.end(), t,
            [](sim::Tick tt, const Span *s) { return tt < s->end; });
        if (it == v.begin())
            return nullptr;
        return *(it - 1);
    };

    // Producer op on `q` whose result reached the fabric by `t`:
    // prefer a recent sync-writing op on `var`, fall back to the
    // latest op of `q` (its completion still happens-before `t`).
    auto producer_span = [&](sim::ProcId q, sim::SyncVarId var,
                             sim::Tick t) -> const Span * {
        const auto &v = proc_spans[q];
        auto it = std::upper_bound(
            v.begin(), v.end(), t,
            [](sim::Tick tt, const Span *s) { return tt < s->end; });
        const Span *fallback = nullptr;
        unsigned scanned = 0;
        while (it != v.begin() && scanned < 8) {
            --it;
            ++scanned;
            const Span *s = *it;
            if (!fallback)
                fallback = s;
            if (s->var == var && isSyncWriterKind(s->kind))
                return s;
        }
        return fallback;
    };

    // The committing access on `edge.var` that woke the waiter:
    // latest commit event by another processor at or before the
    // wake tick; returns that writer's producing span.
    auto find_writer = [&](const Edge &edge,
                           sim::ProcId waiter) -> const Span * {
        auto itv = var_events.find(edge.var);
        if (itv == var_events.end())
            return nullptr;
        const auto &v = itv->second;
        auto it = std::upper_bound(
            v.begin(), v.end(), edge.end,
            [](sim::Tick t, const SyncEvent *e) {
                return t < e->at;
            });
        unsigned scanned = 0;
        while (it != v.begin() && scanned < 64) {
            --it;
            ++scanned;
            if ((*it)->who == waiter)
                continue;
            if ((*it)->who >= np)
                continue;
            const Span *sq =
                producer_span((*it)->who, edge.var, edge.end);
            if (sq)
                return sq;
        }
        return nullptr;
    };

    // --- Backward walk from the op that finished last ---
    const Span *cur = nullptr;
    for (const auto &s : spans) {
        if (!cur || s.end > cur->end ||
            (s.end == cur->end && s.who < cur->who))
            cur = &s;
    }

    std::vector<Segment> segs;
    sim::Tick frontier = run_cycles;

    // Close the path tile [from, frontier) and move the frontier.
    auto push_seg = [&](SegmentKind kind, sim::ProcId proc,
                        sim::Tick from, const Span *sp,
                        sim::SyncVarId var, bool has_var) {
        if (from >= frontier)
            return;
        Segment g;
        g.kind = kind;
        g.proc = proc;
        g.start = from;
        g.end = frontier;
        if (sp) {
            g.opId = sp->opId;
            g.opKind = sp->kind;
            g.iter = sp->iter;
        }
        g.var = var;
        g.hasVar = has_var;
        segs.push_back(g);
        frontier = from;
    };

    // Drain between the last op and the completion tick.
    if (cur->end < frontier)
        push_seg(SegmentKind::dispatch, cur->who, cur->end, nullptr,
                 0, false);

    const std::size_t max_steps = spans.size() * 2 + 64;
    std::size_t steps = 0;
    while (true) {
        if (++steps > max_steps) {
            prof.truncated = true;
            break;
        }
        const Edge *edge = latest_edge_in(
            cur->who, cur->start, std::min(cur->end, frontier));
        if (edge) {
            // Post-wake part of the op.
            push_seg(SegmentKind::op, cur->who, edge->end, cur,
                     cur->var, spanHasVar(cur->kind));
            const Span *sq = find_writer(*edge, cur->who);
            if (sq && sq->end <= edge->end && sq != cur) {
                // Producer completion -> waiter wake: fabric
                // propagation charged to the variable.
                push_seg(SegmentKind::wait, cur->who, sq->end,
                         nullptr, edge->var, true);
                cur = sq;
                continue;
            }
            // No visible causal writer (e.g. the value predates the
            // recorded window): charge the block to the variable
            // and continue in this processor's program order.
            push_seg(SegmentKind::wait, cur->who, cur->start,
                     nullptr, edge->var, true);
        } else {
            push_seg(SegmentKind::op, cur->who, cur->start, cur,
                     cur->var, spanHasVar(cur->kind));
        }
        const Span *prev = latest_span_before(
            cur->who, std::min(cur->start, frontier));
        if (prev == nullptr) {
            push_seg(SegmentKind::start, cur->who, 0, nullptr, 0,
                     false);
            break;
        }
        push_seg(SegmentKind::dispatch, cur->who, prev->end, nullptr,
                 0, false);
        cur = prev;
    }
    // A truncated walk leaves [0, frontier) unattributed; tile it
    // so the achieved length still equals total cycles.
    if (frontier > 0)
        push_seg(SegmentKind::start, cur->who, 0, nullptr, 0, false);

    std::reverse(segs.begin(), segs.end());
    prof.segments = std::move(segs);

    // --- Phase decomposition and attribution ---
    std::vector<std::vector<const TraceRecorder::PhaseEvent *>>
        proc_phases(np);
    for (const auto &p : rec.phases())
        proc_phases[p.who].push_back(&p);
    for (auto &v : proc_phases) {
        std::stable_sort(
            v.begin(), v.end(),
            [](const TraceRecorder::PhaseEvent *a,
               const TraceRecorder::PhaseEvent *b) {
                return a->start < b->start;
            });
    }

    std::vector<std::vector<const TraceRecorder::ResourceEvent *>>
        proc_modules(np);
    for (const auto &r : rec.resources()) {
        if (r.resource == kModuleResource && r.who < np)
            proc_modules[r.who].push_back(&r);
    }
    for (auto &v : proc_modules) {
        std::stable_sort(
            v.begin(), v.end(),
            [](const TraceRecorder::ResourceEvent *a,
               const TraceRecorder::ResourceEvent *b) {
                return a->start < b->start;
            });
    }

    std::map<sim::SyncVarId, sim::Tick> var_cycles;
    std::map<sim::ProcId, sim::Tick> proc_cycles;
    std::map<unsigned, sim::Tick> module_cycles;

    for (auto &g : prof.segments) {
        sim::Tick len = g.cycles();
        prof.achievedCycles += len;
        if (g.kind == SegmentKind::wait) {
            prof.propagationCycles += len;
            var_cycles[g.var] += len;
            continue;
        }
        proc_cycles[g.proc] += len;

        sim::Tick covered = 0;
        for (const auto *p : proc_phases[g.proc]) {
            if (p->end <= g.start)
                continue;
            if (p->start >= g.end)
                break;
            sim::Tick ov = std::min(p->end, g.end) -
                           std::max(p->start, g.start);
            covered += ov;
            switch (p->phase) {
              case sim::TracePhase::compute:
                g.compute += ov;
                break;
              case sim::TracePhase::spin:
                g.spin += ov;
                break;
              case sim::TracePhase::syncOverhead:
                g.sync += ov;
                break;
              case sim::TracePhase::stall:
                g.stall += ov;
                break;
              case sim::TracePhase::dispatch:
                g.dispatch += ov;
                break;
            }
        }
        g.other = len > covered ? len - covered : 0;
        prof.computeCycles += g.compute;
        prof.spinCycles += g.spin;
        prof.syncCycles += g.sync;
        prof.stallCycles += g.stall;
        prof.dispatchCycles += g.dispatch;
        prof.otherCycles += g.other;

        for (const auto *r : proc_modules[g.proc]) {
            if (r->end <= g.start)
                continue;
            if (r->start >= g.end)
                break;
            module_cycles[r->index] += std::min(r->end, g.end) -
                                       std::max(r->start, g.start);
        }
    }

    const auto &var_stats = rec.syncVars();
    for (const auto &entry : var_cycles) {
        CriticalPathProfile::VarShare share;
        share.var = entry.first;
        auto it = var_stats.find(entry.first);
        if (it != var_stats.end())
            share.label = it->second.label;
        share.cycles = entry.second;
        prof.varShares.push_back(std::move(share));
    }
    std::stable_sort(prof.varShares.begin(), prof.varShares.end(),
                     [](const CriticalPathProfile::VarShare &a,
                        const CriticalPathProfile::VarShare &b) {
                         return a.cycles > b.cycles;
                     });

    for (const auto &entry : proc_cycles)
        prof.procShares.push_back({entry.first, entry.second});
    std::stable_sort(prof.procShares.begin(), prof.procShares.end(),
                     [](const CriticalPathProfile::ProcShare &a,
                        const CriticalPathProfile::ProcShare &b) {
                         return a.cycles > b.cycles;
                     });

    for (const auto &entry : module_cycles)
        prof.moduleShares.push_back({entry.first, entry.second});
    std::stable_sort(
        prof.moduleShares.begin(), prof.moduleShares.end(),
        [](const CriticalPathProfile::ModuleShare &a,
           const CriticalPathProfile::ModuleShare &b) {
            return a.cycles > b.cycles;
        });

    return prof;
}

json::Value
CriticalPathProfile::toJson() const
{
    json::Value v = json::object();
    v.set("achieved_cycles",
          static_cast<std::uint64_t>(achievedCycles));
    v.set("bound_cycles", static_cast<std::uint64_t>(boundCycles));
    v.set("gap_pct", gapPct());
    v.set("truncated", truncated);

    json::Value ph = json::object();
    ph.set("compute", static_cast<std::uint64_t>(computeCycles));
    ph.set("spin", static_cast<std::uint64_t>(spinCycles));
    ph.set("sync_overhead", static_cast<std::uint64_t>(syncCycles));
    ph.set("stall", static_cast<std::uint64_t>(stallCycles));
    ph.set("dispatch", static_cast<std::uint64_t>(dispatchCycles));
    ph.set("propagation",
           static_cast<std::uint64_t>(propagationCycles));
    ph.set("other", static_cast<std::uint64_t>(otherCycles));
    v.set("phases", std::move(ph));

    json::Value by_var = json::array();
    for (const auto &s : varShares) {
        json::Value e = json::object();
        e.set("var", static_cast<std::uint64_t>(s.var));
        if (!s.label.empty())
            e.set("label", s.label);
        e.set("cycles", static_cast<std::uint64_t>(s.cycles));
        by_var.push(std::move(e));
    }
    v.set("by_var", std::move(by_var));

    json::Value by_proc = json::array();
    for (const auto &s : procShares) {
        json::Value e = json::object();
        e.set("proc", static_cast<std::uint64_t>(s.proc));
        e.set("cycles", static_cast<std::uint64_t>(s.cycles));
        by_proc.push(std::move(e));
    }
    v.set("by_proc", std::move(by_proc));

    json::Value by_module = json::array();
    for (const auto &s : moduleShares) {
        json::Value e = json::object();
        e.set("module", s.module);
        e.set("cycles", static_cast<std::uint64_t>(s.cycles));
        by_module.push(std::move(e));
    }
    v.set("by_module", std::move(by_module));

    v.set("wait_latency", waitAll.toJson());

    json::Value by_kind = json::object();
    for (const auto &entry : waitByKind)
        by_kind.set(entry.first, entry.second.toJson());
    v.set("wait_by_kind", std::move(by_kind));

    json::Value wait_by_var = json::array();
    for (const auto &entry : waitByVar) {
        json::Value e = entry.second.toJson();
        json::Value out = json::object();
        out.set("var", static_cast<std::uint64_t>(entry.first));
        for (auto &member : e.asObject())
            out.set(member.first, std::move(member.second));
        wait_by_var.push(std::move(out));
    }
    v.set("wait_by_var", std::move(wait_by_var));

    json::Value segs = json::array();
    for (const auto &g : segments) {
        json::Value e = json::object();
        e.set("kind", segmentKindName(g.kind));
        e.set("proc", static_cast<std::uint64_t>(g.proc));
        e.set("start", static_cast<std::uint64_t>(g.start));
        e.set("end", static_cast<std::uint64_t>(g.end));
        if (g.kind == SegmentKind::op) {
            e.set("op_kind", ir::opKindName(g.opKind));
            e.set("op_id", g.opId);
            e.set("iter", g.iter);
        }
        if (g.hasVar)
            e.set("var", static_cast<std::uint64_t>(g.var));
        if (g.kind != SegmentKind::wait) {
            json::Value d = json::object();
            d.set("compute", static_cast<std::uint64_t>(g.compute));
            d.set("spin", static_cast<std::uint64_t>(g.spin));
            d.set("sync_overhead",
                  static_cast<std::uint64_t>(g.sync));
            d.set("stall", static_cast<std::uint64_t>(g.stall));
            d.set("dispatch",
                  static_cast<std::uint64_t>(g.dispatch));
            d.set("other", static_cast<std::uint64_t>(g.other));
            e.set("phases", std::move(d));
        }
        segs.push(std::move(e));
    }
    v.set("segments", std::move(segs));
    return v;
}

namespace {

void
printPct(std::ostream &os, const char *name, sim::Tick part,
         sim::Tick whole)
{
    if (part == 0)
        return;
    os << "  " << name << " " << part << " ("
       << std::fixed << std::setprecision(1)
       << (whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0)
       << "%)";
}

void
printHistLine(std::ostream &os, const char *label,
              const LogHistogram &h)
{
    os << "    " << std::left << std::setw(14) << label
       << std::right << " n=" << std::setw(7) << h.count()
       << "  p50=" << std::setw(8) << h.percentile(0.50)
       << "  p95=" << std::setw(8) << h.percentile(0.95)
       << "  p99=" << std::setw(8) << h.percentile(0.99)
       << "  max=" << std::setw(8) << h.max() << "\n";
}

} // namespace

void
CriticalPathProfile::writeText(std::ostream &os,
                               const std::string &label) const
{
    os << "critical path";
    if (!label.empty())
        os << " [" << label << "]";
    os << ": achieved " << achievedCycles << " cycles, bound "
       << boundCycles;
    if (boundCycles) {
        os << " (gap " << std::fixed << std::setprecision(1)
           << gapPct() << "%)";
    }
    if (truncated)
        os << " [truncated]";
    os << "\n  composition:";
    printPct(os, "compute", computeCycles, achievedCycles);
    printPct(os, "spin", spinCycles, achievedCycles);
    printPct(os, "sync", syncCycles, achievedCycles);
    printPct(os, "stall", stallCycles, achievedCycles);
    printPct(os, "dispatch", dispatchCycles, achievedCycles);
    printPct(os, "propagation", propagationCycles, achievedCycles);
    printPct(os, "other", otherCycles, achievedCycles);
    os << "\n";

    if (!varShares.empty()) {
        os << "  hottest sync vars on path:";
        std::size_t shown = 0;
        for (const auto &s : varShares) {
            if (shown++ == 5)
                break;
            os << "  v" << s.var;
            if (!s.label.empty())
                os << "(" << s.label << ")";
            os << "=" << s.cycles;
        }
        if (varShares.size() > 5)
            os << "  (+" << varShares.size() - 5 << " more)";
        os << "\n";
    }
    if (!procShares.empty()) {
        os << "  path cycles by proc:";
        std::size_t shown = 0;
        for (const auto &s : procShares) {
            if (shown++ == 5)
                break;
            os << "  p" << s.proc << "=" << s.cycles;
        }
        if (procShares.size() > 5)
            os << "  (+" << procShares.size() - 5 << " more)";
        os << "\n";
    }
    if (!moduleShares.empty()) {
        os << "  module busy under path:";
        std::size_t shown = 0;
        for (const auto &s : moduleShares) {
            if (shown++ == 3)
                break;
            os << "  m" << s.module << "=" << s.cycles;
        }
        if (moduleShares.size() > 3)
            os << "  (+" << moduleShares.size() - 3 << " more)";
        os << "\n";
    }

    if (waitAll.count()) {
        os << "  wait latency (cycles):\n";
        printHistLine(os, "all waits", waitAll);
        for (const auto &entry : waitByKind)
            printHistLine(os, entry.first.c_str(), entry.second);
    }

    constexpr std::size_t kMaxSegs = 32;
    os << "  path (" << segments.size() << " segments";
    if (segments.size() > kMaxSegs)
        os << ", first " << kMaxSegs;
    os << "):\n";
    std::size_t shown = 0;
    for (const auto &g : segments) {
        if (shown++ == kMaxSegs)
            break;
        os << "    [" << std::setw(9) << g.start << ","
           << std::setw(9) << g.end << ") ";
        switch (g.kind) {
          case SegmentKind::op:
            os << "p" << g.proc << " " << ir::opKindName(g.opKind)
               << "#" << g.opId << " iter " << g.iter;
            if (g.hasVar)
                os << " var " << g.var;
            break;
          case SegmentKind::wait:
            os << "p" << g.proc << " wait var " << g.var
               << " (propagation)";
            break;
          case SegmentKind::dispatch:
            os << "p" << g.proc << " dispatch";
            break;
          case SegmentKind::start:
            os << "p" << g.proc << " lead-in";
            break;
        }
        os << "\n";
    }
}

json::Value
CriticalPathProfile::perfettoEvents() const
{
    // Dedicated "critical path" process so the track sits next to
    // the per-processor phase tracks from chromeTrace().
    constexpr int pid_critpath = 2;
    json::Value events = json::array();

    json::Value meta = json::object();
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", pid_critpath);
    meta.set("tid", 0);
    json::Value margs = json::object();
    margs.set("name", "critical path");
    meta.set("args", std::move(margs));
    events.push(std::move(meta));

    for (const auto &g : segments) {
        json::Value ev = json::object();
        std::string name;
        switch (g.kind) {
          case SegmentKind::op:
            name = std::string(ir::opKindName(g.opKind)) + " p" +
                   std::to_string(g.proc);
            break;
          case SegmentKind::wait:
            name = "wait v" + std::to_string(g.var);
            break;
          case SegmentKind::dispatch:
            name = "dispatch p" + std::to_string(g.proc);
            break;
          case SegmentKind::start:
            name = "lead-in";
            break;
        }
        ev.set("name", name);
        ev.set("cat", "critpath");
        ev.set("ph", "X");
        ev.set("ts", static_cast<std::uint64_t>(g.start));
        ev.set("dur", static_cast<std::uint64_t>(g.cycles()));
        ev.set("pid", pid_critpath);
        ev.set("tid", 0);
        json::Value args = json::object();
        args.set("kind", segmentKindName(g.kind));
        args.set("proc", static_cast<std::uint64_t>(g.proc));
        if (g.kind == SegmentKind::op)
            args.set("op_id", g.opId);
        if (g.hasVar)
            args.set("var", static_cast<std::uint64_t>(g.var));
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }
    return events;
}

} // namespace core
} // namespace psync
