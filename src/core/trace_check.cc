#include "core/trace_check.hh"

#include <algorithm>

#include "dep/transform.hh"
#include "sim/logging.hh"

namespace psync {
namespace core {

void
TraceChecker::access(std::uint32_t stmt, std::uint16_t ref,
                     std::uint64_t iter, sim::Addr addr, bool is_write,
                     sim::Tick start, sim::Tick end)
{
    (void)addr;
    (void)is_write;
    Record &rec = records_[keyOf(stmt, ref, iter)];
    rec.firstStart = std::min(rec.firstStart, start);
    rec.lastEnd = std::max(rec.lastEnd, end);
}

std::vector<std::string>
TraceChecker::verify(const dep::Loop &loop,
                     const std::vector<dep::Dep> &deps,
                     size_t max_messages) const
{
    std::vector<std::string> violations;
    instancesChecked_ = 0;
    const long m = loop.innerTrip();
    const std::uint64_t total = loop.iterations();

    for (const dep::Dep &dep : deps) {
        long dist = dep.linearDistance(m);
        if (dist <= 0)
            continue;
        for (std::uint64_t lpid = static_cast<std::uint64_t>(dist) + 1;
             lpid <= total; ++lpid) {
            if (!dep::sinkHasSource(loop, dep, lpid))
                continue; // genuine loop boundary
            std::uint64_t src_lpid =
                lpid - static_cast<std::uint64_t>(dist);
            if (!dep::stmtActive(loop, loop.body[dep.src], src_lpid) ||
                !dep::stmtActive(loop, loop.body[dep.dst], lpid)) {
                continue; // untaken branch arm
            }

            auto src_it = records_.find(
                keyOf(dep.src, static_cast<std::uint16_t>(dep.srcRef),
                      src_lpid));
            auto dst_it = records_.find(
                keyOf(dep.dst, static_cast<std::uint16_t>(dep.dstRef),
                      lpid));
            ++instancesChecked_;

            auto report = [&](const std::string &msg) {
                if (violations.size() < max_messages)
                    violations.push_back(msg);
            };

            if (src_it == records_.end() ||
                dst_it == records_.end()) {
                report(sim::csprintf(
                    "%s: missing access record (src@%llu%s, "
                    "dst@%llu%s)",
                    depToString(loop, dep).c_str(),
                    static_cast<unsigned long long>(src_lpid),
                    src_it == records_.end() ? " MISSING" : "",
                    static_cast<unsigned long long>(lpid),
                    dst_it == records_.end() ? " MISSING" : ""));
                continue;
            }
            if (src_it->second.lastEnd >
                dst_it->second.firstStart) {
                report(sim::csprintf(
                    "%s violated: src@%llu ends %llu > dst@%llu "
                    "starts %llu",
                    depToString(loop, dep).c_str(),
                    static_cast<unsigned long long>(src_lpid),
                    static_cast<unsigned long long>(
                        src_it->second.lastEnd),
                    static_cast<unsigned long long>(lpid),
                    static_cast<unsigned long long>(
                        dst_it->second.firstStart)));
            }
        }
    }
    return violations;
}

} // namespace core
} // namespace psync
