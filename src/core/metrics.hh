/**
 * @file
 * Run-result metrics: everything the paper argues about, snapshot
 * from a machine after a run — cycle counts by category, bus
 * traffic, memory-module hot spots, and synchronization-fabric
 * activity.
 */

#ifndef PSYNC_CORE_METRICS_HH
#define PSYNC_CORE_METRICS_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "core/json.hh"
#include "sim/machine.hh"

namespace psync {
namespace core {

/** Aggregated outcome of one simulation. */
struct RunResult
{
    /** False when the tick limit was hit (deadlock/livelock). */
    bool completed = false;

    /** Tick at which the last processor drained. */
    sim::Tick cycles = 0;

    unsigned numProcs = 0;

    /** Sum over processors. */
    sim::Tick computeCycles = 0;
    sim::Tick spinCycles = 0;
    sim::Tick syncOverheadCycles = 0;
    sim::Tick stallCycles = 0;

    std::uint64_t syncOps = 0;
    std::uint64_t marksSkipped = 0;
    std::uint64_t programsRun = 0;

    /** Simulation events the machine's event core executed. */
    std::uint64_t eventsExecuted = 0;

    /**
     * Events whose handler capture spilled to the heap. Nonzero
     * means an InlineFunction capture outgrew the small buffer — a
     * silent allocation regression the bench sweep gates on.
     */
    std::uint64_t heapFallbackEvents = 0;

    /** Event-core kind that ran the simulation ("calendar"/"heap"). */
    std::string eventCore;

    std::uint64_t dataBusTransactions = 0;
    sim::Tick dataBusQueueDelay = 0;
    double dataBusUtilization = 0.0;

    std::uint64_t syncBusBroadcasts = 0;
    std::uint64_t coalescedWrites = 0;
    double syncBusUtilization = 0.0;

    std::uint64_t memAccesses = 0;
    std::uint64_t hottestModuleAccesses = 0;
    double hotSpotRatio = 1.0;
    sim::Tick moduleQueueDelay = 0;

    /** Memory-fabric spin polls (each is bus+module traffic). */
    std::uint64_t syncMemPolls = 0;

    /** Private data-cache activity (zero when caches disabled). */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheInvalidations = 0;

    /** Fraction of processor-cycles spent computing. */
    double
    utilization() const
    {
        if (cycles == 0 || numProcs == 0)
            return 0.0;
        return static_cast<double>(computeCycles) /
               (static_cast<double>(cycles) * numProcs);
    }

    /** Fraction of processor-cycles spent busy-waiting. */
    double
    spinFraction() const
    {
        if (cycles == 0 || numProcs == 0)
            return 0.0;
        return static_cast<double>(spinCycles) /
               (static_cast<double>(cycles) * numProcs);
    }

    double
    speedupOver(sim::Tick sequential_cycles) const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(sequential_cycles) /
               static_cast<double>(cycles);
    }

    /**
     * Machine-readable dump: every raw field plus the derived
     * utilization/spin fractions, a superset of what printResult
     * shows. Keys are stable snake_case; tools should treat absent
     * keys as zero.
     */
    json::Value toJson() const;
};

/** Snapshot a machine's statistics into a RunResult. */
RunResult collectResult(sim::Machine &machine, bool completed);

/** One-result-per-line table helper used by the benches. */
void printResult(std::ostream &os, const char *label,
                 const RunResult &result);

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_METRICS_HH
