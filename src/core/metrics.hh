/**
 * @file
 * Run-result metrics: everything the paper argues about, snapshot
 * from a machine after a run — cycle counts by category, bus
 * traffic, memory-module hot spots, and synchronization-fabric
 * activity.
 */

#ifndef PSYNC_CORE_METRICS_HH
#define PSYNC_CORE_METRICS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/json.hh"
#include "sim/machine.hh"

namespace psync {
namespace core {

/**
 * Fixed-bucket log2 histogram of non-negative durations (cycles or
 * nanoseconds). Bucket i holds the values of bit-width i: bucket 0
 * is exactly {0}, bucket i >= 1 covers [2^(i-1), 2^i - 1]. The last
 * bucket is an overflow bucket absorbing everything at or above
 * 2^(kBuckets-2), so record() never drops a sample. Recording is
 * two integer ops and an increment — cheap enough for per-wait host
 * instrumentation — and exact count/sum/min/max ride along so the
 * summary quantiles can be clamped to observed values.
 */
class LogHistogram
{
  public:
    /** Bucket 48 is the overflow bucket (values >= 2^47). */
    static constexpr unsigned kBuckets = 49;

    void
    record(std::uint64_t value)
    {
        unsigned b = bucketOf(value);
        ++buckets_[b];
        ++count_;
        sum_ += value;
        if (count_ == 1 || value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }

    /** Fold another histogram into this one. */
    void
    merge(const LogHistogram &other)
    {
        if (other.count_ == 0)
            return;
        for (unsigned i = 0; i < kBuckets; ++i)
            buckets_[i] += other.buckets_[i];
        if (count_ == 0 || other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
        count_ += other.count_;
        sum_ += other.sum_;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    std::uint64_t
    bucketCount(unsigned bucket) const
    {
        return bucket < kBuckets ? buckets_[bucket] : 0;
    }

    /** Bucket a value lands in (tests pin the bucketing scheme). */
    static unsigned
    bucketOf(std::uint64_t value)
    {
        unsigned width = 0;
        while (value) {
            ++width;
            value >>= 1;
        }
        return width < kBuckets ? width : kBuckets - 1;
    }

    /**
     * Quantile estimate, q in [0, 1]: the inclusive upper bound of
     * the first bucket whose cumulative count reaches q*count,
     * clamped to the exact [min, max] observed. Zero when empty.
     * With log2 buckets the estimate is within 2x of the true
     * quantile, which is the resolution the latency tables need.
     */
    std::uint64_t percentile(double q) const;

    /**
     * Summary object `{count, sum, min, max, p50, p95, p99}` —
     * insertion order is fixed so trajectory diffs stay readable.
     */
    json::Value toJson() const;

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** Aggregated outcome of one simulation. */
struct RunResult
{
    /** False when the tick limit was hit (deadlock/livelock). */
    bool completed = false;

    /** Tick at which the last processor drained. */
    sim::Tick cycles = 0;

    unsigned numProcs = 0;

    /** Sum over processors. */
    sim::Tick computeCycles = 0;
    sim::Tick spinCycles = 0;
    sim::Tick syncOverheadCycles = 0;
    sim::Tick stallCycles = 0;

    std::uint64_t syncOps = 0;
    std::uint64_t marksSkipped = 0;
    std::uint64_t programsRun = 0;

    /** Simulation events the machine's event core executed. */
    std::uint64_t eventsExecuted = 0;

    /**
     * Events whose handler capture spilled to the heap. Nonzero
     * means an InlineFunction capture outgrew the small buffer — a
     * silent allocation regression the bench sweep gates on.
     */
    std::uint64_t heapFallbackEvents = 0;

    /** Event-core kind that ran the simulation ("calendar"/"heap"). */
    std::string eventCore;

    std::uint64_t dataBusTransactions = 0;
    sim::Tick dataBusQueueDelay = 0;
    double dataBusUtilization = 0.0;

    std::uint64_t syncBusBroadcasts = 0;
    std::uint64_t coalescedWrites = 0;
    double syncBusUtilization = 0.0;

    std::uint64_t memAccesses = 0;
    std::uint64_t hottestModuleAccesses = 0;
    double hotSpotRatio = 1.0;
    sim::Tick moduleQueueDelay = 0;

    /** Memory-fabric spin polls (each is bus+module traffic). */
    std::uint64_t syncMemPolls = 0;

    /** Private data-cache activity (zero when caches disabled). */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheInvalidations = 0;

    /**
     * Combining-network activity (combining fabric only). Empty
     * vectors elsewhere; toJson omits the whole block then, so
     * records of the other fabrics are unchanged byte for byte.
     */
    std::uint64_t netPackets = 0;
    std::uint64_t netCombined = 0;
    /** Fraction of injected packets absorbed in the switches. */
    double netCombineRate = 0.0;
    sim::Tick netQueueDelay = 0;
    std::uint64_t fabricParkedWaits = 0;
    sim::Tick syncModuleQueueDelay = 0;
    /** Sync-module skew, busiest over uniform (data memory aside). */
    double syncHotSpotRatio = 0.0;
    std::vector<std::uint64_t> netStageConflicts;
    std::vector<sim::Tick> netStageConflictCycles;
    std::vector<std::uint64_t> netStageCombines;
    /** Busy fraction per stage (stage busy / switches * cycles). */
    std::vector<double> netStageUtilization;

    /**
     * Cluster shape and hierarchy activity (hierarchical fabric
     * only; numClusters == 0 elsewhere and the block is omitted
     * from toJson). The global stage's utilization rides in
     * syncBusUtilization — the global bus *is* the machine syncBus.
     */
    unsigned numClusters = 0;
    unsigned procsPerCluster = 0;
    std::uint64_t localBroadcasts = 0;
    std::uint64_t globalBroadcasts = 0;
    std::uint64_t coalescedLocal = 0;
    std::uint64_t coalescedGlobal = 0;
    std::uint64_t combinedIncs = 0;
    std::vector<double> clusterBusUtilization;

    /**
     * Distribution of satisfied-wait durations in cycles, filled
     * from the trace recorder when the run was profiled; empty (and
     * omitted from toJson) otherwise.
     */
    LogHistogram waitLatency;

    /** Fraction of processor-cycles spent computing. */
    double
    utilization() const
    {
        if (cycles == 0 || numProcs == 0)
            return 0.0;
        return static_cast<double>(computeCycles) /
               (static_cast<double>(cycles) * numProcs);
    }

    /** Fraction of processor-cycles spent busy-waiting. */
    double
    spinFraction() const
    {
        if (cycles == 0 || numProcs == 0)
            return 0.0;
        return static_cast<double>(spinCycles) /
               (static_cast<double>(cycles) * numProcs);
    }

    double
    speedupOver(sim::Tick sequential_cycles) const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(sequential_cycles) /
               static_cast<double>(cycles);
    }

    /**
     * Machine-readable dump: every raw field plus the derived
     * utilization/spin fractions, a superset of what printResult
     * shows. Keys are stable snake_case and always emitted in the
     * same order (new fields append after the existing block), so
     * trajectory diffs line up; tools should treat absent keys as
     * zero. `wait_latency` appears only when the run was profiled.
     */
    json::Value toJson() const;
};

/** Snapshot a machine's statistics into a RunResult. */
RunResult collectResult(sim::Machine &machine, bool completed);

/** One-result-per-line table helper used by the benches. */
void printResult(std::ostream &os, const char *label,
                 const RunResult &result);

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_METRICS_HH
