#include "core/metrics.hh"

#include <iomanip>

#include "sim/cluster_fabric.hh"
#include "sim/combining_fabric.hh"

namespace psync {
namespace core {

std::uint64_t
LogHistogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the sample we want, 1-based; ceil without float
    // rounding surprises at q == 1.
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_))
        ++rank;
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            // Inclusive upper bound of bucket i, clamped to what
            // was actually observed. The overflow bucket has no
            // finite bound of its own; the observed max is the
            // tightest true statement.
            std::uint64_t hi =
                i == 0 ? 0
                       : (i >= kBuckets - 1
                              ? max_
                              : (std::uint64_t{1} << i) - 1);
            if (hi < min_)
                hi = min_;
            if (hi > max_)
                hi = max_;
            return hi;
        }
    }
    return max_;
}

json::Value
LogHistogram::toJson() const
{
    json::Value v = json::object();
    v.set("count", count_);
    v.set("sum", sum_);
    v.set("min", min());
    v.set("max", max_);
    v.set("p50", percentile(0.50));
    v.set("p95", percentile(0.95));
    v.set("p99", percentile(0.99));
    return v;
}

RunResult
collectResult(sim::Machine &machine, bool completed)
{
    RunResult r;
    r.completed = completed;
    r.cycles = machine.completionTick();
    r.numProcs = machine.numProcs();

    for (unsigned p = 0; p < machine.numProcs(); ++p) {
        const sim::Processor &proc = machine.proc(p);
        r.computeCycles += proc.computeCycles();
        r.spinCycles += proc.spinCycles();
        r.syncOverheadCycles += proc.syncOverheadCycles();
        r.stallCycles += proc.stallCycles();
        r.syncOps += proc.syncOpsIssued();
        r.marksSkipped += proc.marksSkipped();
        r.programsRun += proc.programsRun();
    }

    r.eventsExecuted = machine.eventq().eventsExecuted();
    r.heapFallbackEvents = machine.eventq().heapFallbackEvents();
    r.eventCore = sim::eventCoreKindName(machine.eventq().core());

    r.dataBusTransactions = machine.dataNet().transactions();
    r.dataBusQueueDelay = machine.dataNet().queueDelay();
    r.dataBusUtilization = machine.dataNet().utilization(r.cycles);

    if (machine.caches().enabled()) {
        r.cacheHits = machine.caches().hits();
        r.cacheMisses = machine.caches().misses();
        r.cacheInvalidations = machine.caches().invalidations();
    }

    if (machine.syncBus()) {
        r.syncBusUtilization = machine.syncBus()->utilization(r.cycles);
    }
    if (auto *reg = dynamic_cast<sim::RegisterSyncFabric *>(
            &machine.fabric())) {
        r.syncBusBroadcasts = reg->broadcasts();
        r.coalescedWrites = reg->coalescedWrites();
    }
    if (auto *mem = dynamic_cast<sim::MemorySyncFabric *>(
            &machine.fabric())) {
        r.syncMemPolls = mem->polls();
    }
    if (auto *comb = dynamic_cast<sim::CombiningSyncFabric *>(
            &machine.fabric())) {
        const sim::CombiningOmegaNetwork &net = comb->net();
        r.netPackets = net.transactions();
        r.netCombined = net.combinedTotal();
        if (r.netPackets > 0) {
            r.netCombineRate = static_cast<double>(r.netCombined) /
                               static_cast<double>(r.netPackets);
        }
        r.netQueueDelay = net.queueDelay();
        r.fabricParkedWaits = comb->parkedWaits();
        r.syncModuleQueueDelay = comb->moduleQueueDelay();
        r.syncHotSpotRatio = comb->hotSpotRatio();
        double stage_capacity = static_cast<double>(r.cycles) *
                                net.switchesPerStage();
        for (unsigned s = 0; s < net.stages(); ++s) {
            r.netStageConflicts.push_back(net.stageConflicts(s));
            r.netStageConflictCycles.push_back(
                net.stageConflictCycles(s));
            r.netStageCombines.push_back(net.stageCombines(s));
            r.netStageUtilization.push_back(
                stage_capacity > 0
                    ? static_cast<double>(net.stageBusyCycles(s)) /
                          stage_capacity
                    : 0.0);
        }
    }
    if (auto *hier = dynamic_cast<sim::HierarchicalSyncFabric *>(
            &machine.fabric())) {
        r.numClusters = hier->numClusters();
        r.procsPerCluster = hier->procsPerCluster();
        r.localBroadcasts = hier->localBroadcasts();
        r.globalBroadcasts = hier->globalBroadcasts();
        r.coalescedLocal = hier->coalescedLocal();
        r.coalescedGlobal = hier->coalescedGlobal();
        r.combinedIncs = hier->combinedIncs();
        for (const auto &cb : machine.clusterBuses()) {
            r.clusterBusUtilization.push_back(
                cb->utilization(r.cycles));
        }
    }

    r.memAccesses = machine.memory().totalAccesses();
    r.hottestModuleAccesses = machine.memory().hottestModuleAccesses();
    r.hotSpotRatio = machine.memory().hotSpotRatio();
    r.moduleQueueDelay = machine.memory().moduleQueueDelay();
    return r;
}

json::Value
RunResult::toJson() const
{
    json::Value v = json::object();
    v.set("completed", completed);
    v.set("cycles", static_cast<std::uint64_t>(cycles));
    v.set("num_procs", numProcs);
    v.set("compute_cycles", static_cast<std::uint64_t>(computeCycles));
    v.set("spin_cycles", static_cast<std::uint64_t>(spinCycles));
    v.set("sync_overhead_cycles",
          static_cast<std::uint64_t>(syncOverheadCycles));
    v.set("stall_cycles", static_cast<std::uint64_t>(stallCycles));
    v.set("utilization", utilization());
    v.set("spin_fraction", spinFraction());
    v.set("sync_ops", syncOps);
    v.set("marks_skipped", marksSkipped);
    v.set("programs_run", programsRun);
    v.set("events_executed", eventsExecuted);
    v.set("heap_fallback_events", heapFallbackEvents);
    v.set("event_core", eventCore);
    v.set("data_bus_transactions", dataBusTransactions);
    v.set("data_bus_queue_delay",
          static_cast<std::uint64_t>(dataBusQueueDelay));
    v.set("data_bus_utilization", dataBusUtilization);
    v.set("sync_bus_broadcasts", syncBusBroadcasts);
    v.set("coalesced_writes", coalescedWrites);
    v.set("sync_bus_utilization", syncBusUtilization);
    v.set("mem_accesses", memAccesses);
    v.set("hottest_module_accesses", hottestModuleAccesses);
    v.set("hot_spot_ratio", hotSpotRatio);
    v.set("module_queue_delay",
          static_cast<std::uint64_t>(moduleQueueDelay));
    v.set("sync_mem_polls", syncMemPolls);
    v.set("cache_hits", cacheHits);
    v.set("cache_misses", cacheMisses);
    v.set("cache_invalidations", cacheInvalidations);
    if (!netStageConflicts.empty()) {
        v.set("net_packets", netPackets);
        v.set("net_combined", netCombined);
        v.set("net_combine_rate", netCombineRate);
        v.set("net_queue_delay",
              static_cast<std::uint64_t>(netQueueDelay));
        v.set("parked_waits", fabricParkedWaits);
        v.set("sync_module_queue_delay",
              static_cast<std::uint64_t>(syncModuleQueueDelay));
        v.set("sync_hot_spot_ratio", syncHotSpotRatio);
        json::Value conflicts = json::array();
        json::Value conflict_cycles = json::array();
        json::Value combines = json::array();
        json::Value stage_util = json::array();
        for (std::size_t s = 0; s < netStageConflicts.size(); ++s) {
            conflicts.push(netStageConflicts[s]);
            conflict_cycles.push(
                static_cast<std::uint64_t>(netStageConflictCycles[s]));
            combines.push(netStageCombines[s]);
            stage_util.push(netStageUtilization[s]);
        }
        v.set("net_stage_conflicts", std::move(conflicts));
        v.set("net_stage_conflict_cycles", std::move(conflict_cycles));
        v.set("net_stage_combines", std::move(combines));
        v.set("net_stage_utilization", std::move(stage_util));
    }
    if (numClusters > 0) {
        v.set("num_clusters", numClusters);
        v.set("procs_per_cluster", procsPerCluster);
        v.set("local_broadcasts", localBroadcasts);
        v.set("global_broadcasts", globalBroadcasts);
        v.set("coalesced_local", coalescedLocal);
        v.set("coalesced_global", coalescedGlobal);
        v.set("combined_incs", combinedIncs);
        json::Value cluster_util = json::array();
        for (double u : clusterBusUtilization)
            cluster_util.push(u);
        v.set("cluster_bus_utilization", std::move(cluster_util));
    }
    if (waitLatency.count() > 0)
        v.set("wait_latency", waitLatency.toJson());
    return v;
}

void
printResult(std::ostream &os, const char *label, const RunResult &r)
{
    os << std::left << std::setw(20) << label << std::right
       << std::setw(10) << r.cycles
       << std::setw(9) << std::fixed << std::setprecision(3)
       << r.utilization()
       << std::setw(9) << r.spinFraction()
       << std::setw(12) << r.syncOps
       << std::setw(12) << r.syncBusBroadcasts
       << std::setw(10) << r.coalescedWrites
       << std::setw(12) << r.syncMemPolls
       << std::setw(8) << std::setprecision(2) << r.hotSpotRatio
       << (r.completed ? "" : "  [DEADLOCK]") << "\n";
}

} // namespace core
} // namespace psync
