/**
 * @file
 * Contention blame attribution.
 *
 * Reduces a recorded trace (core/tracing) plus the run's metrics
 * into an explanation of *where the cycles went*: which
 * synchronization variables blocked which processors for how long
 * (from the fabric wait-edge events), which memory modules were
 * hot (from resource-occupancy events), and how far the achieved
 * time sits above the dependence-limited critical-path bound. The
 * report is emitted both as an aligned text table and as JSON, and
 * is what `psync_bench --report` prints.
 */

#ifndef PSYNC_CORE_BLAME_HH
#define PSYNC_CORE_BLAME_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/critical_path.hh"
#include "core/json.hh"
#include "core/metrics.hh"
#include "core/tracing.hh"

namespace psync {
namespace core {

/** Wait-chain attribution and slack breakdown of one traced run. */
struct BlameReport
{
    /** Blocking attributed to one synchronization variable. */
    struct VarBlame
    {
        sim::SyncVarId var = 0;
        /** Scheme-assigned label ("pc[3]", "key[17]"), if any. */
        std::string label;
        /** Satisfied waits that actually blocked. */
        std::uint64_t waits = 0;
        /** Sum of blocked cycles over those waits. */
        sim::Tick blockedCycles = 0;
        /** Longest single wait. */
        sim::Tick maxWait = 0;
        /** Blocked cycles per blocked processor. */
        std::map<sim::ProcId, sim::Tick> perProc;

        /** Display name: the label, or "v<id>" when unlabeled. */
        std::string name() const;
    };

    /**
     * Blocking attributed to one emitting wait *site*: a (variable,
     * IR op id) pair, aggregated across iterations. Op ids are the
     * stable ids ir::ProgramBuilder stamps at lowering time, so a
     * site survives IR passes deleting or merging its neighbors and
     * can be correlated with `--dump-ir` output. Id 0 collects
     * waits of hand-built programs.
     */
    struct SiteBlame
    {
        sim::SyncVarId var = 0;
        std::uint32_t opId = 0;
        /** Scheme-assigned variable label, if any. */
        std::string label;
        std::uint64_t waits = 0;
        sim::Tick blockedCycles = 0;
        sim::Tick maxWait = 0;

        /** Display name: "<var-name>@op<id>". */
        std::string name() const;
    };

    /** Occupancy of one memory module. */
    struct ModuleHeat
    {
        unsigned module = 0;
        /** Cycles the module spent servicing requests. */
        sim::Tick busyCycles = 0;
        /** Requests serviced. */
        std::uint64_t accesses = 0;
    };

    /** Contention at one combining-network switch stage. */
    struct StageHeat
    {
        unsigned stage = 0;
        /** Packets that found their switch busy. */
        std::uint64_t conflicts = 0;
        /** Cycles those packets waited for the switch. */
        sim::Tick conflictCycles = 0;
        /** Packets absorbed by combining at this stage. */
        std::uint64_t combines = 0;
        /** Stage busy fraction of the run. */
        double utilization = 0.0;
    };

    /** Activity of one cluster's local synchronization bus. */
    struct ClusterHeat
    {
        unsigned cluster = 0;
        /** Local-bus busy fraction of the run. */
        double busUtilization = 0.0;
    };

    /** Sorted by descending blockedCycles. */
    std::vector<VarBlame> vars;

    /** Per-wait-site attribution, sorted by descending cycles. */
    std::vector<SiteBlame> sites;

    /** One entry per module that appears in the trace. */
    std::vector<ModuleHeat> modules;

    /** Per-stage network contention (combining fabric runs only). */
    std::vector<StageHeat> netStages;

    /** Per-cluster bus heat (hierarchical fabric runs only). */
    std::vector<ClusterHeat> clusters;

    /** Spin cycles covered by wait edges (<= totalSpinCycles). */
    sim::Tick attributedSpinCycles = 0;

    /** The run's total spin cycles (summed over processors). */
    sim::Tick totalSpinCycles = 0;

    /** Achieved completion time. */
    sim::Tick achievedCycles = 0;

    /** Dependence-or-work bound on this processor count (0 = n/a). */
    sim::Tick boundCycles = 0;

    /** The run's cycle split, for the slack breakdown. */
    RunResult run;

    /** Fraction of spin cycles attributed to a named wait edge. */
    double
    spinCoverage() const
    {
        if (totalSpinCycles == 0)
            return 1.0;
        return static_cast<double>(attributedSpinCycles) /
               static_cast<double>(totalSpinCycles);
    }

    /** achieved / bound (1.0 = running at the bound). */
    double
    slackFactor() const
    {
        if (boundCycles == 0)
            return 0.0;
        return static_cast<double>(achievedCycles) /
               static_cast<double>(boundCycles);
    }

    /** Machine-readable dump (stable snake_case keys). */
    json::Value toJson() const;

    /** Aligned human-readable report. */
    void writeText(std::ostream &os) const;
};

/**
 * Reduce a recorded trace into a blame report.
 * @param recorder trace of the run (wait edges, resource events,
 *        sync-variable labels)
 * @param run      the run's collected metrics
 * @param bound    optional achievable bound in cycles (pass the
 *        critical path's achievableBound; 0 disables the slack
 *        section)
 */
BlameReport buildBlameReport(const TraceRecorder &recorder,
                             const RunResult &run,
                             sim::Tick bound = 0);

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_BLAME_HH
