#include "serve/service.hh"

#include <algorithm>

#include "core/trace_check.hh"
#include "core/value_trace.hh"
#include "sim/logging.hh"

namespace psync {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
nanosSince(Clock::time_point from, Clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to -
                                                             from)
            .count());
}

/** Executor config of one gang: lanes fixed by the gang size. */
native::NativeConfig
executorConfig(const ServeConfig &cfg)
{
    native::NativeConfig ncfg = cfg.native;
    ncfg.numThreads = std::max(1u, cfg.gangSize);
    ncfg.timeoutMs = cfg.requestTimeoutMs;
    return ncfg;
}

} // namespace

DoacrossService::Arena::Arena(
    const std::shared_ptr<const core::CachedPlan> &p,
    const ServeConfig &cfg)
    : plan(p),
      fabric(p->initWords, cfg.native.spinLimit, cfg.wakePolicy),
      data(p->programs),
      executor(fabric, data, executorConfig(cfg))
{
    // From here on, every request restores the plan's init image
    // with one epoch bump instead of |initWords| writes.
    fabric.enableEpochReuse();
}

DoacrossService::DoacrossService(const ServeConfig &cfg)
    : cfg_(cfg), cache_(cfg.planCacheCapacity),
      queue_(cfg.queueCapacity)
{
    cfg_.gangs = std::max(1u, cfg_.gangs);
    cfg_.gangSize = std::max(1u, cfg_.gangSize);
    gangs_.reserve(cfg_.gangs);
    for (unsigned g = 0; g < cfg_.gangs; ++g) {
        gangs_.push_back(std::make_unique<Gang>());
        gangs_.back()->index = g;
    }
    for (auto &gang : gangs_) {
        Gang *gp = gang.get();
        threads_.emplace_back([this, gp] { leaderLoop(*gp); });
        for (unsigned lane = 1; lane < cfg_.gangSize; ++lane)
            threads_.emplace_back(
                [this, gp, lane] { memberLoop(*gp, lane); });
    }
}

DoacrossService::~DoacrossService()
{
    stop();
}

std::shared_ptr<const core::CachedPlan>
DoacrossService::plan(const dep::Loop &loop, sync::SchemeKind kind,
                      const core::RunConfig &rcfg)
{
    return cache_.get(
        loop, kind, rcfg, [this](core::CachedPlan &entry) {
            if (entry.hasReference ||
                entry.kind == sync::SchemeKind::none)
                return;
            // Renamed-storage plans have no sequential oracle; one
            // fresh-init native run (deterministic across backends,
            // per the cross-validation suite) supplies the
            // reference image the sampled verifier compares epochs
            // against.
            native::NativeConfig ncfg = executorConfig(cfg_);
            ncfg.recordAccesses = true;
            native::NativeSyncFabric fabric(
                entry.initWords, ncfg.spinLimit, cfg_.wakePolicy);
            native::NativeDataMemory data(entry.programs);
            native::NativeExecutor executor(fabric, data, ncfg);
            native::NativeRunResult run =
                executor.runPool(entry.programs);
            if (!run.completed)
                return; // leave hasReference false; skip comparisons
            core::ValueTrace values;
            executor.replayAccesses(values);
            entry.refMemory = values.memory();
            entry.refReads = values.reads();
            entry.hasReference = true;
        });
}

std::uint64_t
DoacrossService::submit(const dep::Loop &loop,
                        sync::SchemeKind kind,
                        const core::RunConfig &rcfg)
{
    if (stopped_.load(std::memory_order_acquire))
        return 0;
    return submitPlan(plan(loop, kind, rcfg));
}

std::uint64_t
DoacrossService::submitPlan(
    std::shared_ptr<const core::CachedPlan> plan)
{
    if (!plan || stopped_.load(std::memory_order_acquire))
        return 0;
    Request req;
    req.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    req.plan = std::move(plan);
    req.submitTime = Clock::now();
    submitted_.fetch_add(1, std::memory_order_seq_cst);
    if (!queue_.push(std::move(req))) {
        submitted_.fetch_sub(1, std::memory_order_seq_cst);
        return 0;
    }
    return req.id;
}

DoacrossService::Arena &
DoacrossService::arenaFor(
    Gang &gang, const std::shared_ptr<const core::CachedPlan> &plan)
{
    auto it = gang.arenas.find(plan->key);
    if (it != gang.arenas.end())
        return *it->second;
    // Arenas are cheap to rebuild from a cached plan (no replan);
    // cap gang-local retention so plans long evicted from the cache
    // do not pin fabrics forever.
    std::size_t cap =
        std::max<std::size_t>(8, cfg_.planCacheCapacity);
    if (gang.arenas.size() >= cap)
        gang.arenas.clear();
    auto arena = std::make_unique<Arena>(plan, cfg_);
    Arena &ref = *arena;
    gang.arenas.emplace(plan->key, std::move(arena));
    return ref;
}

void
DoacrossService::serveRequest(Gang &gang, Request &req)
{
    Arena &arena = arenaFor(gang, req.plan);
    ++gang.requestsSeen;
    bool record =
        cfg_.verifySampleEvery != 0 &&
        gang.requestsSeen % cfg_.verifySampleEvery == 0;

    arena.fabric.beginEpoch();
    epochsBegun_.fetch_add(1, std::memory_order_relaxed);
    arena.data.clearAll();
    arena.executor.beginRun(cfg_.gangSize, record);

    const auto wall_start = Clock::now();
    const native::Deadline deadline =
        wall_start +
        std::chrono::milliseconds(cfg_.requestTimeoutMs);

    if (cfg_.gangSize > 1) {
        {
            std::lock_guard<std::mutex> lk(gang.m);
            gang.work = &arena;
            gang.deadline = deadline;
            gang.lanesDone = 0;
            // The mutex publishes the epoch bump, data clear and
            // beginRun state to the member lanes.
            ++gang.generation;
        }
        gang.cv.notify_all();
    }
    arena.executor.runLane(arena.plan->programs, 0, deadline);
    if (cfg_.gangSize > 1) {
        std::unique_lock<std::mutex> lk(gang.m);
        gang.doneCv.wait(lk, [&] {
            return gang.lanesDone == cfg_.gangSize - 1;
        });
    }

    native::NativeRunResult result = arena.executor.finishRun(
        nanosSince(wall_start, Clock::now()));
    ++arena.uses;

    Completion completion;
    completion.requestId = req.id;
    completion.gang = gang.index;
    completion.completed = result.completed;
    completion.programsRun = result.programsRun;
    completion.problems = std::move(result.errors);
    programsRun_.fetch_add(result.programsRun,
                           std::memory_order_relaxed);
    if (result.completed) {
        completedOk_.fetch_add(1, std::memory_order_relaxed);
    } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        if (completion.problems.empty())
            completion.problems.push_back(
                "run aborted (watchdog deadline or fabric abort)");
    }

    if (record && result.completed) {
        completion.verified = true;
        verifySamples_.fetch_add(1, std::memory_order_relaxed);
        verifyRun(arena, completion);
        if (!completion.verifyOk)
            verifyFailures_.fetch_add(1,
                                      std::memory_order_relaxed);
    }

    gang.batch.push_back(std::move(completion));
    gang.batchTimes.push_back(req.submitTime);
}

void
DoacrossService::verifyRun(const Arena &arena,
                           Completion &completion)
{
    // Non-const access for the executor's value audit; gang-local,
    // so this is still single-threaded per arena.
    auto &executor = const_cast<Arena &>(arena).executor;
    const auto &plan = *arena.plan;

    core::TraceChecker checker;
    executor.replayAccesses(checker);
    std::vector<std::string> violations =
        checker.verify(plan.loop, plan.plan.depsVerified);
    for (auto &v : violations)
        completion.problems.push_back("dependence: " +
                                      std::move(v));

    std::vector<std::string> mismatches = executor.verifyValues();
    for (auto &m : mismatches)
        completion.problems.push_back("value: " + std::move(m));

    bool image_ok = true;
    if (plan.hasReference) {
        core::ValueTrace values;
        executor.replayAccesses(values);
        if (values.memory() != plan.refMemory) {
            image_ok = false;
            completion.problems.push_back(sim::csprintf(
                "image: epoch %llu memory image differs from "
                "fresh-init reference (%zu vs %zu written words)",
                static_cast<unsigned long long>(
                    arena.fabric.epoch()),
                values.memory().size(), plan.refMemory.size()));
        }
        if (values.reads() != plan.refReads) {
            image_ok = false;
            completion.problems.push_back(
                "image: read values differ from fresh-init "
                "reference");
        }
    }
    completion.verifyOk =
        violations.empty() && mismatches.empty() && image_ok;
}

void
DoacrossService::flushBatch(Gang &gang)
{
    if (gang.batch.empty())
        return;
    const auto now = Clock::now();
    {
        std::lock_guard<std::mutex> lk(completionsMutex_);
        for (std::size_t i = 0; i < gang.batch.size(); ++i) {
            gang.batch[i].latencyNanos =
                nanosSince(gang.batchTimes[i], now);
            // Guarded by completionsMutex_ so stats() can merge
            // per-gang histograms without racing the leaders.
            gang.latencyNs.record(gang.batch[i].latencyNanos);
            completions_.push_back(std::move(gang.batch[i]));
        }
        published_ += gang.batch.size();
    }
    idleCv_.notify_all();
    gang.batch.clear();
    gang.batchTimes.clear();
}

void
DoacrossService::leaderLoop(Gang &gang)
{
    Request req;
    for (;;) {
        int got =
            queue_.popFor(req, std::chrono::milliseconds(2));
        if (got < 0)
            break; // closed and drained
        if (got == 0) {
            // Idle: don't sit on batched completions.
            flushBatch(gang);
            continue;
        }
        serveRequest(gang, req);
        req = Request{};
        if (gang.batch.size() >= cfg_.completionBatch)
            flushBatch(gang);
    }
    flushBatch(gang);
    {
        std::lock_guard<std::mutex> lk(gang.m);
        gang.shutdown = true;
    }
    gang.cv.notify_all();
}

void
DoacrossService::memberLoop(Gang &gang, unsigned lane)
{
    std::uint64_t seen = 0;
    for (;;) {
        Arena *work = nullptr;
        native::Deadline deadline{};
        {
            std::unique_lock<std::mutex> lk(gang.m);
            gang.cv.wait(lk, [&] {
                return gang.generation != seen || gang.shutdown;
            });
            if (gang.generation == seen && gang.shutdown)
                break;
            seen = gang.generation;
            work = gang.work;
            deadline = gang.deadline;
        }
        work->executor.runLane(work->plan->programs, lane,
                               deadline);
        {
            std::lock_guard<std::mutex> lk(gang.m);
            ++gang.lanesDone;
            if (gang.lanesDone == cfg_.gangSize - 1)
                gang.doneCv.notify_one();
        }
    }
}

void
DoacrossService::waitIdle()
{
    std::unique_lock<std::mutex> lk(completionsMutex_);
    idleCv_.wait(lk, [&] {
        return published_ ==
               submitted_.load(std::memory_order_seq_cst);
    });
}

std::vector<Completion>
DoacrossService::takeCompletions()
{
    std::lock_guard<std::mutex> lk(completionsMutex_);
    std::vector<Completion> out = std::move(completions_);
    completions_.clear();
    return out;
}

void
DoacrossService::stop()
{
    if (stopped_.exchange(true, std::memory_order_acq_rel))
        return;
    queue_.close();
    for (auto &thread : threads_)
        thread.join();
    threads_.clear();
}

ServiceStats
DoacrossService::stats() const
{
    ServiceStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completedOk = completedOk_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.programsRun = programsRun_.load(std::memory_order_relaxed);
    s.verifySamples =
        verifySamples_.load(std::memory_order_relaxed);
    s.verifyFailures =
        verifyFailures_.load(std::memory_order_relaxed);
    s.epochsBegun = epochsBegun_.load(std::memory_order_relaxed);
    s.planCacheHits = cache_.hits();
    s.planCacheMisses = cache_.misses();
    s.planCacheHitRate = cache_.hitRate();
    {
        std::lock_guard<std::mutex> lk(completionsMutex_);
        for (const auto &gang : gangs_)
            s.latencyNs.merge(gang->latencyNs);
    }
    return s;
}

} // namespace serve
} // namespace psync
