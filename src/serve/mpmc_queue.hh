/**
 * @file
 * Bounded MPMC submission queue for the Doacross runtime service.
 *
 * The lock-free fast path is the classic bounded array queue with
 * per-cell sequence numbers (Vyukov's design, the same shape the
 * scalable-synchronization literature uses for combiner mailboxes):
 * producers and consumers each claim a position with one CAS on
 * their own cursor, then hand the cell over by bumping its sequence
 * — no producer ever contends with a consumer on the same word, so
 * sustained submission traffic does not serialize on one lock.
 *
 * Blocking push/pop add a parking layer in the style of the native
 * fabric's waiter handshake: a would-be sleeper publishes itself in
 * a seq_cst waiter count and re-checks the queue before sleeping,
 * the opposite side notifies (locklessly — see notifyPop) only when
 * the count says someone may be parked, and every sleep is a
 * bounded slice so even a lost race costs microseconds. close()
 * wakes everyone; pop drains remaining elements and then reports
 * closed.
 */

#ifndef PSYNC_SERVE_MPMC_QUEUE_HH
#define PSYNC_SERVE_MPMC_QUEUE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

namespace psync {
namespace serve {

template <typename T>
class MpmcQueue
{
  public:
    /** Capacity is rounded up to a power of two (min 2). */
    explicit MpmcQueue(std::size_t capacity)
    {
        std::size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    std::size_t capacity() const { return mask_ + 1; }

    /** Non-blocking enqueue; false when full or closed. */
    bool
    tryPush(T value)
    {
        if (closed())
            return false;
        Cell *cell;
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            std::size_t seq =
                cell->seq.load(std::memory_order_acquire);
            auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // full
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        cell->seq.store(pos + 1, std::memory_order_release);
        notifyPop();
        return true;
    }

    /** Non-blocking dequeue; false when empty. */
    bool
    tryPop(T &out)
    {
        Cell *cell;
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            std::size_t seq =
                cell->seq.load(std::memory_order_acquire);
            auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos + 1);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // empty
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        out = std::move(cell->value);
        cell->seq.store(pos + mask_ + 1,
                        std::memory_order_release);
        notifyPush();
        return true;
    }

    /** Blocking enqueue; false only if the queue is closed. */
    bool
    push(T value)
    {
        if (tryPush(value))
            return true;
        std::unique_lock<std::mutex> lk(pushMutex_);
        pushWaiters_.fetch_add(1, std::memory_order_seq_cst);
        bool ok = false;
        for (;;) {
            if (tryPush(value)) {
                ok = true;
                break;
            }
            if (closed())
                break;
            pushCv_.wait_for(lk, kParkSlice);
        }
        pushWaiters_.fetch_sub(1, std::memory_order_seq_cst);
        return ok;
    }

    /**
     * Blocking dequeue; false once the queue is closed *and*
     * drained (remaining elements are still delivered after
     * close()).
     */
    bool
    pop(T &out)
    {
        for (;;) {
            int r = popFor(out, kParkSlice * 8);
            if (r > 0)
                return true;
            if (r < 0)
                return false;
        }
    }

    /**
     * Dequeue with a timeout: 1 = got an element, 0 = timed out,
     * -1 = closed and drained. A 0 return is the service leader's
     * idle hook (flush batched completions, then retry).
     */
    template <typename Rep, typename Period>
    int
    popFor(T &out, std::chrono::duration<Rep, Period> budget)
    {
        if (tryPop(out))
            return 1;
        auto deadline = std::chrono::steady_clock::now() + budget;
        std::unique_lock<std::mutex> lk(popMutex_);
        popWaiters_.fetch_add(1, std::memory_order_seq_cst);
        int r = 0;
        for (;;) {
            if (tryPop(out)) {
                r = 1;
                break;
            }
            if (closed()) {
                // Closed and the tryPop above found nothing:
                // drained.
                r = -1;
                break;
            }
            auto now = std::chrono::steady_clock::now();
            if (now >= deadline)
                break;
            popCv_.wait_for(
                lk, std::min<std::chrono::steady_clock::duration>(
                        kParkSlice, deadline - now));
        }
        popWaiters_.fetch_sub(1, std::memory_order_seq_cst);
        return r;
    }

    /** Wake everyone; pushes start failing, pops drain then stop. */
    void
    close()
    {
        closed_.store(true, std::memory_order_seq_cst);
        {
            std::lock_guard<std::mutex> lk(pushMutex_);
        }
        pushCv_.notify_all();
        {
            std::lock_guard<std::mutex> lk(popMutex_);
        }
        popCv_.notify_all();
    }

    bool
    closed() const
    {
        return closed_.load(std::memory_order_seq_cst);
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> seq{0};
        T value{};
    };

    static constexpr auto kParkSlice =
        std::chrono::microseconds(250);

    /*
     * The notify paths deliberately do NOT take the waiter's mutex:
     * tryPush runs inside push() holding pushMutex_ and tryPop runs
     * inside popFor() holding popMutex_, so a locked notify would be
     * a classic lock-order inversion (pusher holds pushMutex_ wants
     * popMutex_, popper the reverse) — a hard deadlock. The cost is
     * that a notify can race a waiter between its recheck and its
     * wait and get lost; the bounded kParkSlice sleep turns that
     * lost wake into a ≤250µs stall instead of a hang.
     */
    void
    notifyPop()
    {
        if (popWaiters_.load(std::memory_order_seq_cst) != 0)
            popCv_.notify_one();
    }

    void
    notifyPush()
    {
        if (pushWaiters_.load(std::memory_order_seq_cst) != 0)
            pushCv_.notify_one();
    }

    std::unique_ptr<Cell[]> cells_;
    std::size_t mask_ = 0;
    /** Enqueue cursor. */
    std::atomic<std::size_t> tail_{0};
    /** Dequeue cursor. */
    std::atomic<std::size_t> head_{0};
    std::atomic<bool> closed_{false};

    std::mutex pushMutex_, popMutex_;
    std::condition_variable pushCv_, popCv_;
    std::atomic<unsigned> pushWaiters_{0}, popWaiters_{0};
};

} // namespace serve
} // namespace psync

#endif // PSYNC_SERVE_MPMC_QUEUE_HH
