/**
 * @file
 * The persistent Doacross runtime service.
 *
 * Everything the per-run native backend pays per program —
 * dependence analysis, scheme planning, IR lowering + passes +
 * verification, sync-variable initialization, thread spawn/join —
 * is paid once here and amortized over millions of executions:
 *
 *  - submit() resolves the request through a core::PlanCache, so a
 *    loop seen before costs one key lookup, not a replan;
 *  - a fixed set of worker *gangs* (gangSize threads each, started
 *    once) pulls requests from a bounded MPMC queue — the gang
 *    leader pops, primes an execution arena, and publishes the work
 *    to its members through a generation handshake; no thread is
 *    ever spawned per request;
 *  - each (gang, plan) pair keeps an arena: a NativeSyncFabric in
 *    epoch-reuse mode (beginEpoch() logically restores the plan's
 *    init image in O(1) — the paper's §4 initialization cost,
 *    amortized away), a NativeDataMemory (cleared per request: data
 *    words are request payload, only sync vars are epoch-reused),
 *    and a NativeExecutor driven through its gang-mode API;
 *  - completions are published in batches; each request's
 *    submit-to-publish latency lands in a per-gang LogHistogram, so
 *    p50/p95/p99 include the batching cost;
 *  - every Nth request per gang (verifySampleEvery) runs with
 *    access recording on and is fully verified after execution:
 *    trace-checker replay against the plan's dependence arcs, the
 *    executor's read-value audit, and a bit-exact comparison of the
 *    functional memory/read image against the cached plan's
 *    reference oracle;
 *  - a per-request watchdog deadline turns a deadlocked or wedged
 *    plan into abortAll + a failed completion; the next request on
 *    that arena starts from beginEpoch(), which also clears the
 *    abort, so one poisoned request never poisons the service.
 */

#ifndef PSYNC_SERVE_SERVICE_HH
#define PSYNC_SERVE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/metrics.hh"
#include "core/plan_cache.hh"
#include "native/executor.hh"
#include "serve/mpmc_queue.hh"

namespace psync {
namespace serve {

/** Service-wide configuration, fixed at construction. */
struct ServeConfig
{
    /** Worker gangs; requests are served one per gang at a time. */
    unsigned gangs = 2;
    /** Threads per gang = lanes per execution. */
    unsigned gangSize = 4;
    /** Execution knobs (schedule, chunk, spin, jitter, profile). */
    native::NativeConfig native;
    /** Wait/wake policy of every arena fabric. */
    native::WakePolicy wakePolicy = native::WakePolicy::sharded;
    /** Submission queue slots (rounded up to a power of two). */
    std::size_t queueCapacity = 1024;
    std::size_t planCacheCapacity = 64;
    /**
     * Run full verification on every Nth request per gang
     * (0 = never). Sampled requests pay for access logging and
     * replay; the rest run on the lean path.
     */
    unsigned verifySampleEvery = 0;
    /** Completions per batched publish (idle flushes early). */
    unsigned completionBatch = 32;
    /** Per-request watchdog: deadline before abortAll. */
    std::uint64_t requestTimeoutMs = 2000;
};

/** Outcome of one served request. */
struct Completion
{
    std::uint64_t requestId = 0;
    unsigned gang = 0;
    /** All programs ran, no abort, no protocol errors. */
    bool completed = false;
    /** This request was a verification sample. */
    bool verified = false;
    /** Sample passed all three checks (true when not sampled). */
    bool verifyOk = true;
    /** submit() to batched publish, host nanoseconds. */
    std::uint64_t latencyNanos = 0;
    std::uint64_t programsRun = 0;
    /** Human-readable verification/execution problems. */
    std::vector<std::string> problems;
};

/** Aggregate service counters (stable snapshot via stats()). */
struct ServiceStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completedOk = 0;
    std::uint64_t failed = 0;
    std::uint64_t programsRun = 0;
    std::uint64_t verifySamples = 0;
    std::uint64_t verifyFailures = 0;
    std::uint64_t epochsBegun = 0;
    std::uint64_t planCacheHits = 0;
    std::uint64_t planCacheMisses = 0;
    double planCacheHitRate = 0.0;
    /** Submit-to-publish latency across all gangs, nanoseconds. */
    core::LogHistogram latencyNs;
};

/**
 * The long-lived service. Construction starts the gangs; stop()
 * (or destruction) closes the queue, drains in-flight work and
 * joins every thread.
 */
class DoacrossService
{
  public:
    explicit DoacrossService(const ServeConfig &cfg);
    ~DoacrossService();

    DoacrossService(const DoacrossService &) = delete;
    DoacrossService &operator=(const DoacrossService &) = delete;

    /**
     * Plan (through the cache) and enqueue one execution of `loop`
     * under `kind`. Blocks while the queue is full (natural
     * backpressure). @return the request id, or 0 after stop().
     */
    std::uint64_t submit(const dep::Loop &loop,
                         sync::SchemeKind kind,
                         const core::RunConfig &rcfg);

    /** Enqueue an already-cached plan (hot submission path). */
    std::uint64_t
    submitPlan(std::shared_ptr<const core::CachedPlan> plan);

    /**
     * Resolve a plan through the service's cache without
     * enqueueing; attaches a native reference image to
     * renamed-storage plans. Feed the result to submitPlan().
     */
    std::shared_ptr<const core::CachedPlan>
    plan(const dep::Loop &loop, sync::SchemeKind kind,
         const core::RunConfig &rcfg);

    /** Block until every submitted request has been published. */
    void waitIdle();

    /** Move out everything published so far (after waitIdle() for
     * a complete picture). */
    std::vector<Completion> takeCompletions();

    /** Close the queue, drain, join all gang threads. Idempotent. */
    void stop();

    ServiceStats stats() const;
    const core::PlanCache &planCache() const { return cache_; }
    const ServeConfig &config() const { return cfg_; }

  private:
    /** One queued execution request. */
    struct Request
    {
        std::uint64_t id = 0;
        std::shared_ptr<const core::CachedPlan> plan;
        std::chrono::steady_clock::time_point submitTime{};
    };

    /**
     * Everything needed to rerun one plan on one gang without any
     * per-request construction. Gang-local: only its own gang's
     * threads ever touch it.
     */
    struct Arena
    {
        std::shared_ptr<const core::CachedPlan> plan;
        native::NativeSyncFabric fabric;
        native::NativeDataMemory data;
        native::NativeExecutor executor;
        std::uint64_t uses = 0;

        Arena(const std::shared_ptr<const core::CachedPlan> &p,
              const ServeConfig &cfg);
    };

    /** One worker gang: leader (rank 0) + members. */
    struct Gang
    {
        unsigned index = 0;
        std::mutex m;
        std::condition_variable cv;
        std::condition_variable doneCv;
        /** Bumped by the leader per dispatched request. */
        std::uint64_t generation = 0;
        bool shutdown = false;
        /** Member lanes finished with the current generation. */
        unsigned lanesDone = 0;
        /** Work descriptor, valid for the current generation. */
        Arena *work = nullptr;
        native::Deadline deadline{};

        /** Leader-local state (no locking needed). */
        std::unordered_map<std::string, std::unique_ptr<Arena>>
            arenas;
        std::vector<Completion> batch;
        /** Submit times of `batch`, for publish-time latency. */
        std::vector<std::chrono::steady_clock::time_point>
            batchTimes;
        std::uint64_t requestsSeen = 0;
        core::LogHistogram latencyNs;
    };

    void leaderLoop(Gang &gang);
    void memberLoop(Gang &gang, unsigned lane);
    void serveRequest(Gang &gang, Request &req);
    void verifyRun(const Arena &arena, Completion &completion);
    void flushBatch(Gang &gang);
    Arena &arenaFor(Gang &gang,
                    const std::shared_ptr<const core::CachedPlan> &plan);

    ServeConfig cfg_;
    core::PlanCache cache_;
    MpmcQueue<Request> queue_;

    std::vector<std::unique_ptr<Gang>> gangs_;
    std::vector<std::thread> threads_;

    std::atomic<std::uint64_t> nextId_{1};
    std::atomic<bool> stopped_{false};

    /** Published-completion store + idle tracking. */
    mutable std::mutex completionsMutex_;
    std::condition_variable idleCv_;
    std::vector<Completion> completions_;
    std::uint64_t published_ = 0;
    std::atomic<std::uint64_t> submitted_{0};

    /** Aggregate counters (relaxed; snapshot via stats()). */
    std::atomic<std::uint64_t> completedOk_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> programsRun_{0};
    std::atomic<std::uint64_t> verifySamples_{0};
    std::atomic<std::uint64_t> verifyFailures_{0};
    std::atomic<std::uint64_t> epochsBegun_{0};
};

} // namespace serve
} // namespace psync

#endif // PSYNC_SERVE_SERVICE_HH
