/**
 * @file
 * Loop intermediate representation.
 *
 * The unit of parallelization is a singly or doubly nested DO loop
 * whose body is a list of statements with affine array references —
 * the shape the paper's dependence machinery (section 2) assumes.
 * Statements may sit under a branch (Example 3); branch outcomes
 * are resolved per iteration from a deterministic seed so a whole
 * experiment replays identically.
 */

#ifndef PSYNC_DEP_LOOP_IR_HH
#define PSYNC_DEP_LOOP_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace psync {
namespace dep {

/** Inclusive loop bounds. */
struct Bounds
{
    long lo = 1;
    long hi = 1;

    long count() const { return hi >= lo ? hi - lo + 1 : 0; }
};

/**
 * One affine subscript of an array dimension:
 * index = coeffI * i + coeffJ * j + offset.
 */
struct Subscript
{
    int coeffI = 0;
    int coeffJ = 0;
    long offset = 0;

    long
    eval(long i, long j) const
    {
        return static_cast<long>(coeffI) * i +
               static_cast<long>(coeffJ) * j + offset;
    }
};

/** A read or write of an array element. */
struct ArrayRef
{
    std::string array;
    std::vector<Subscript> subs;
    bool isWrite = false;
};

/** Branch guard: the statement runs only on one arm of a branch. */
struct Guard
{
    /** Branch id; negative means the statement is unconditional. */
    int branchId = -1;
    /** True if the statement is on the taken arm. */
    bool onTaken = true;

    bool conditional() const { return branchId >= 0; }
};

/** One executable statement of the loop body. */
struct Statement
{
    std::string label;
    /** Pure compute cycles, excluding memory accesses. */
    sim::Tick cost = 1;
    std::vector<ArrayRef> refs;
    Guard guard;
};

/** A singly (depth 1) or doubly (depth 2) nested loop. */
struct Loop
{
    std::string name;
    int depth = 1;
    Bounds outer;
    /** Only meaningful when depth == 2. */
    Bounds inner;
    std::vector<Statement> body;
    /** Taken probability per branch id. */
    std::vector<double> branchProb;
    /** Seed resolving branch outcomes per iteration. */
    std::uint64_t seed = 1;

    /** Total number of iterations (linearized when depth 2). */
    std::uint64_t
    iterations() const
    {
        std::uint64_t n = static_cast<std::uint64_t>(outer.count());
        if (depth == 2)
            n *= static_cast<std::uint64_t>(inner.count());
        return n;
    }

    /** Inner trip count M used for linearization. */
    long innerTrip() const { return depth == 2 ? inner.count() : 1; }

    /** Map 1-based linear process id to (i, j) indices. */
    void indicesOf(std::uint64_t lpid, long &i, long &j) const;

    /** Map (i, j) to the 1-based linear process id. */
    std::uint64_t lpidOf(long i, long j) const;
};

/**
 * Deterministically resolve whether branch `branch_id` is taken in
 * iteration `lpid` of `loop`.
 */
bool branchTaken(const Loop &loop, std::uint64_t lpid, int branch_id);

/** True if the statement executes in the given iteration. */
bool stmtActive(const Loop &loop, const Statement &stmt,
                std::uint64_t lpid);

/**
 * Assigns shared-memory addresses to every array element the loop
 * can touch, so simulated data accesses hit distinct interleaved
 * words the way the real arrays would.
 */
class DataLayout
{
  public:
    explicit DataLayout(const Loop &loop, sim::Addr word_bytes = 8);

    /** Address of the element `ref` touches in iteration (i, j). */
    sim::Addr addrOf(const ArrayRef &ref, long i, long j) const;

    /** Dense element ordinal (array-local), for keying schemes. */
    std::uint64_t elementOrdinal(const ArrayRef &ref, long i,
                                 long j) const;

    /** Global dense ordinal across all arrays. */
    std::uint64_t globalOrdinal(const ArrayRef &ref, long i,
                                long j) const;

    /** Total elements across all arrays (key-count bound). */
    std::uint64_t totalElements() const { return totalElements_; }

    /** Number of distinct arrays. */
    size_t numArrays() const { return arrays_.size(); }

  private:
    struct ArrayInfo
    {
        std::string name;
        std::vector<long> lo;       ///< per-dim min index
        std::vector<long> extent;   ///< per-dim size
        std::uint64_t elements = 1;
        std::uint64_t baseOrdinal = 0;
        sim::Addr baseAddr = 0;
    };

    const ArrayInfo &infoOf(const std::string &name) const;

    std::vector<ArrayInfo> arrays_;
    sim::Addr wordBytes;
    std::uint64_t totalElements_ = 0;
};

} // namespace dep
} // namespace psync

#endif // PSYNC_DEP_LOOP_IR_HH
