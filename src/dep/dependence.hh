/**
 * @file
 * Constant-distance data-dependence analysis (section 2.1).
 *
 * Flow (read-after-write), anti (write-after-read) and output
 * (write-after-write) dependences between statements are derived by
 * subtracting the affine subscript expressions of each pair of
 * references to the same array, exactly as the paper describes for
 * Fig. 2.1. Only constant distances are supported; a non-constant
 * pair is reported so callers can refuse to run the loop as a
 * Doacross.
 */

#ifndef PSYNC_DEP_DEPENDENCE_HH
#define PSYNC_DEP_DEPENDENCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dep/loop_ir.hh"

namespace psync {
namespace dep {

/** Kind of data dependence. */
enum class DepType : std::uint8_t
{
    flow,   ///< read after write
    anti,   ///< write after read
    output, ///< write after write
};

/** Printable dependence-type name. */
const char *depTypeName(DepType type);

/** One (possibly cross-iteration) data dependence between stmts. */
struct Dep
{
    /** Source statement index into Loop::body. */
    unsigned src = 0;
    /** Sink statement index into Loop::body. */
    unsigned dst = 0;
    DepType type = DepType::flow;
    /** Distance in the outer loop index. */
    long d1 = 0;
    /** Distance in the inner loop index (0 for depth-1 loops). */
    long d2 = 0;
    /** Array whose element carries the dependence. */
    std::string array;
    /** Index of the carrying reference within the source stmt. */
    unsigned srcRef = 0;
    /** Index of the carrying reference within the sink stmt. */
    unsigned dstRef = 0;
    /** Marked by coverage elimination (section 2, Fig. 2.1). */
    bool covered = false;
    /**
     * Marked by DepGraph::transitiveReduction(): a chain of other
     * arcs with total distance <= this arc's distance exists. Only
     * sound when each statement's instances execute serialized
     * (section 5 / Fig. 5.2); schemes that serialize instances may
     * skip synchronization for these arcs.
     */
    bool redundant = false;

    /** True if the dependence crosses iterations. */
    bool
    crossIteration() const
    {
        return d1 != 0 || d2 != 0;
    }

    /** Distance after linearizing a depth-2 loop with inner trip M. */
    long
    linearDistance(long inner_trip) const
    {
        return d1 * inner_trip + d2;
    }
};

/** Result of analyzing one loop. */
struct DepAnalysis
{
    std::vector<Dep> deps;
    /**
     * Reference pairs whose distance is not a compile-time
     * constant (different coefficients or non-integral division).
     * Empty for every workload in this repository.
     */
    std::vector<std::string> nonConstantPairs;
};

/**
 * Analyze all reference pairs of `loop` and return its dependences.
 * Duplicate (src, dst, type, d1, d2) tuples are merged. Intra-
 * iteration dependences (distance 0) are included with d1 = d2 = 0
 * and directed by program order; same-statement zero-distance pairs
 * are dropped.
 */
DepAnalysis analyze(const Loop &loop);

/** Human-readable one-line rendering, e.g. "flow S1->S2 d=(2)". */
std::string depToString(const Loop &loop, const Dep &dep);

} // namespace dep
} // namespace psync

#endif // PSYNC_DEP_DEPENDENCE_HH
