#include "dep/transform.hh"

namespace psync {
namespace dep {

bool
sinkHasSource(const Loop &loop, const Dep &dep, std::uint64_t lpid)
{
    long i = 0, j = 0;
    loop.indicesOf(lpid, i, j);
    long si = i - dep.d1;
    long sj = j - dep.d2;
    if (si < loop.outer.lo || si > loop.outer.hi)
        return false;
    if (loop.depth == 2 && (sj < loop.inner.lo || sj > loop.inner.hi))
        return false;
    return true;
}

std::uint64_t
extraDepCount(const Loop &loop, const Dep &dep)
{
    std::uint64_t extra = 0;
    long m = loop.innerTrip();
    long d = dep.linearDistance(m);
    if (d <= 0)
        return 0;
    std::uint64_t total = loop.iterations();
    for (std::uint64_t lpid = static_cast<std::uint64_t>(d) + 1;
         lpid <= total; ++lpid) {
        if (!sinkHasSource(loop, dep, lpid))
            ++extra;
    }
    return extra;
}

std::vector<std::vector<std::pair<long, long>>>
makeWavefronts(const Bounds &i_bounds, const Bounds &j_bounds)
{
    long ni = i_bounds.count();
    long nj = j_bounds.count();
    std::vector<std::vector<std::pair<long, long>>> fronts;
    if (ni <= 0 || nj <= 0)
        return fronts;
    fronts.resize(static_cast<size_t>(ni + nj - 1));
    for (long i = i_bounds.lo; i <= i_bounds.hi; ++i) {
        for (long j = j_bounds.lo; j <= j_bounds.hi; ++j) {
            long w = (i - i_bounds.lo) + (j - j_bounds.lo);
            fronts[static_cast<size_t>(w)].emplace_back(i, j);
        }
    }
    return fronts;
}

} // namespace dep
} // namespace psync
