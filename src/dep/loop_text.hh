/**
 * @file
 * Canonical printable form for dep::Loop.
 *
 * The fuzzer draws loops from a size-bounded grammar; this module
 * is that grammar's concrete syntax. Every loop the generator can
 * produce prints to a line-oriented text form, and every printed
 * form parses back to an identical loop — so a fuzzer-found
 * divergence can be checked in as a self-contained regression file
 * (tests/fuzz/corpus) or shipped inside a repro bundle without
 * having to replay the generator that produced it.
 *
 * Grammar (one declaration per line, '#' starts a comment):
 *
 *   psync-loop v1
 *   name <ident>
 *   depth <1|2>
 *   outer <lo> <hi>
 *   inner <lo> <hi>            # depth-2 only
 *   seed <u64>
 *   branch <taken-prob>        # one per branch id, in order
 *   stmt <label> cost <ticks> [guard <id> taken|untaken]
 *   ref <read|write> <array> sub <ci> <cj> <off> [sub <ci> <cj> <off>]
 *   end
 *
 * `ref` lines attach to the most recent `stmt`. Printing is
 * deterministic (fixed field order, locale-independent numerals),
 * so print(parse(print(L))) == print(L) byte for byte.
 */

#ifndef PSYNC_DEP_LOOP_TEXT_HH
#define PSYNC_DEP_LOOP_TEXT_HH

#include <string>

#include "dep/loop_ir.hh"

namespace psync {
namespace dep {

/** Render `loop` in the canonical text form. */
std::string printLoop(const Loop &loop);

/** Outcome of parsing a canonical loop text. */
struct ParsedLoop
{
    bool ok = false;
    /** "line N: what went wrong" when !ok. */
    std::string error;
    Loop loop;
};

/**
 * Parse the canonical text form. Strict: unknown directives,
 * missing header/end, out-of-range guard ids or subscript counts
 * inconsistent with `depth` are all errors, never guesses.
 */
ParsedLoop parseLoop(const std::string &text);

} // namespace dep
} // namespace psync

#endif // PSYNC_DEP_LOOP_TEXT_HH
