/**
 * @file
 * Dependence graph with redundant-arc (coverage) elimination.
 *
 * Section 2 of the paper observes that enforcing S1->S3 and S3->S4
 * in Fig. 2.1 covers S1->S4: a chain of enforced arcs whose
 * distances sum to exactly the covered arc's distance orders the
 * same pair of statement instances, so the covered arc needs no
 * synchronization of its own. Program order within an iteration
 * contributes zero-distance edges to such chains.
 *
 * The exact-sum condition is the instance-safe one for Doacross
 * execution, where different iterations run concurrently and no
 * statement's instances are otherwise ordered across iterations:
 * an arc (a->b, d) is covered iff some other path from a to b has
 * total distance exactly d, because each hop (x->y, dx) orders
 * x(i) before y(i+dx) for every i and the orderings compose
 * instance to instance. Paths through branch-guarded statements are
 * not used: the intermediate may not execute (Example 3).
 */

#ifndef PSYNC_DEP_DEP_GRAPH_HH
#define PSYNC_DEP_DEP_GRAPH_HH

#include <string>
#include <vector>

#include "dep/dependence.hh"
#include "dep/loop_ir.hh"

namespace psync {
namespace dep {

/** A loop together with its analyzed dependences. */
class DepGraph
{
  public:
    /** Build the graph: analyze, then mark covered arcs. */
    DepGraph(const Loop &loop, bool eliminate_covered = true);

    const Loop &loop() const { return *loop_; }

    /** All dependences, covered ones included (marked). */
    const std::vector<Dep> &deps() const { return deps_; }

    /** Cross-iteration dependences that must be synchronized. */
    std::vector<Dep> enforced() const;

    /** All cross-iteration dependences (for trace verification). */
    std::vector<Dep> crossIteration() const;

    /** Statements that are the source of an enforced dependence. */
    std::vector<unsigned> sourceStatements() const;

    /** Number of covered (eliminated) arcs. */
    unsigned numCovered() const;

    /**
     * Transitive reduction under the serialized-instances rule
     * (section 5, Fig. 5.2): mark cross-iteration arcs for which a
     * chain of other uncovered arcs (plus zero-distance program
     * order) has total distance <= the arc's distance. The <=
     * condition is weaker than the exact-sum coverage rule and is
     * only valid when each statement's instances are serialized —
     * a path of distance d' < d then orders a(i) before b(i+d')
     * which precedes b(i+d) — so only schemes that serialize
     * instances (statement- and process-oriented stepping) may
     * drop synchronization for the marked arcs. Linearization of a
     * nested loop manufactures exactly such arcs: the boundary arc
     * (d1,d2) with large linear distance rides along with its
     * interior sibling of smaller distance. Marked arcs get
     * Dep::redundant and are excluded from enforcedReduced().
     * Returns the number of arcs newly marked.
     */
    unsigned transitiveReduction();

    /** Arcs to synchronize when redundant arcs may be dropped. */
    std::vector<Dep> enforcedReduced() const;

    /** Number of arcs marked by transitiveReduction(). */
    unsigned numRedundant() const;

    /** Multi-line rendering of the full graph. */
    std::string toString() const;

    /**
     * Graphviz dot rendering: statements as nodes, dependences as
     * labeled edges (dashed = covered), mirroring Fig. 2.1(b).
     */
    std::string toDot() const;

  private:
    void markCovered();

    /**
     * True if a path from `src` to `dst` of linearized distance
     * exactly `dist` (or, with `at_most`, <= `dist`) exists,
     * excluding arc `skip`, arcs already marked covered/redundant,
     * and any path through a branch-guarded intermediate statement.
     */
    bool pathOfDistance(unsigned src, unsigned dst, long dist,
                        size_t skip, bool at_most = false) const;

    const Loop *loop_;
    std::vector<Dep> deps_;
};

} // namespace dep
} // namespace psync

#endif // PSYNC_DEP_DEP_GRAPH_HH
