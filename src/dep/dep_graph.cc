#include "dep/dep_graph.hh"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

namespace psync {
namespace dep {

DepGraph::DepGraph(const Loop &loop, bool eliminate_covered)
    : loop_(&loop)
{
    DepAnalysis analysis = analyze(loop);
    deps_ = std::move(analysis.deps);
    if (eliminate_covered)
        markCovered();
}

std::vector<Dep>
DepGraph::enforced() const
{
    std::vector<Dep> out;
    for (const Dep &d : deps_) {
        if (d.crossIteration() && !d.covered)
            out.push_back(d);
    }
    return out;
}

std::vector<Dep>
DepGraph::crossIteration() const
{
    std::vector<Dep> out;
    for (const Dep &d : deps_) {
        if (d.crossIteration())
            out.push_back(d);
    }
    return out;
}

std::vector<unsigned>
DepGraph::sourceStatements() const
{
    std::set<unsigned> srcs;
    for (const Dep &d : enforced())
        srcs.insert(d.src);
    return {srcs.begin(), srcs.end()};
}

unsigned
DepGraph::numCovered() const
{
    unsigned n = 0;
    for (const Dep &d : deps_) {
        if (d.covered)
            ++n;
    }
    return n;
}

bool
DepGraph::pathOfDistance(unsigned src, unsigned dst, long dist,
                         size_t skip, bool at_most) const
{
    // The search works on linearized distances; exact vector sums
    // are preserved because every workload's inner distances are
    // small relative to the inner trip count.
    long target = dist;
    const long m = loop_->innerTrip();

    std::set<std::tuple<unsigned, long, int>> visited;

    // depth limits runaway exploration on adversarial graphs.
    std::function<bool(unsigned, long, int, bool)> dfs =
        [&](unsigned node, long acc, int hops, bool used_arc) -> bool {
        if (acc > target || hops > 16)
            return false;
        if (node == dst &&
            (at_most ? (acc <= target && used_arc)
                     : (acc == target && (hops >= 2 || used_arc))))
            return true;
        if (!visited.insert({node, acc, hops}).second)
            return false;

        // A branch-guarded statement only executes its waits when
        // the branch is taken, so it can carry a chain link only as
        // the chain's final destination — entering it anywhere the
        // path would continue (including an intermediate visit to
        // `dst` itself, one period early) is unsound.
        auto can_enter = [&](unsigned v, long acc_v) {
            if (!loop_->body[v].guard.conditional())
                return true;
            if (v != dst)
                return false;
            return at_most ? acc_v <= target : acc_v == target;
        };

        // Dependence arcs out of `node`.
        for (size_t k = 0; k < deps_.size(); ++k) {
            if (k == skip || deps_[k].covered || deps_[k].redundant)
                continue;
            const Dep &d = deps_[k];
            if (d.src != node || !d.crossIteration())
                continue;
            // Arcs whose 2-D distance folds to a non-positive
            // linearized distance never have an in-bounds source,
            // so no scheme enforces them; letting one into a chain
            // would fabricate coverings (e.g. -4 + 5 == 1) that
            // nothing orders at run time.
            if (d.linearDistance(m) <= 0)
                continue;
            long next = acc + d.linearDistance(m);
            if (!can_enter(d.dst, next))
                continue;
            if (dfs(d.dst, next, hops + 1, true))
                return true;
        }
        // Program order within an iteration: zero-distance edges to
        // every later statement.
        for (unsigned v = node + 1; v < loop_->body.size(); ++v) {
            if (!can_enter(v, acc))
                continue;
            if (dfs(v, acc, hops + 1, used_arc))
                return true;
        }
        return false;
    };

    return dfs(src, 0, 0, false);
}

void
DepGraph::markCovered()
{
    // Consider larger distances first so short arcs (which do the
    // covering) are never themselves eliminated in favor of arcs
    // they cover.
    std::vector<size_t> order(deps_.size());
    for (size_t k = 0; k < order.size(); ++k)
        order[k] = k;
    const long m = loop_->innerTrip();
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return deps_[x].linearDistance(m) > deps_[y].linearDistance(m);
    });

    for (size_t k : order) {
        Dep &dep = deps_[k];
        if (!dep.crossIteration())
            continue;
        if (pathOfDistance(dep.src, dep.dst, dep.linearDistance(m), k))
            dep.covered = true;
    }
}

unsigned
DepGraph::transitiveReduction()
{
    // Larger distances first: the long (often linearization-
    // manufactured) arcs are the ones short interior arcs make
    // redundant, and an arc dropped here must not itself be used
    // to drop another (pathOfDistance skips redundant arcs).
    std::vector<size_t> order(deps_.size());
    for (size_t k = 0; k < order.size(); ++k)
        order[k] = k;
    const long m = loop_->innerTrip();
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return deps_[x].linearDistance(m) > deps_[y].linearDistance(m);
    });

    unsigned marked = 0;
    for (size_t k : order) {
        Dep &dep = deps_[k];
        if (!dep.crossIteration() || dep.covered || dep.redundant)
            continue;
        if (pathOfDistance(dep.src, dep.dst, dep.linearDistance(m),
                           k, /*at_most=*/true)) {
            dep.redundant = true;
            ++marked;
        }
    }
    return marked;
}

std::vector<Dep>
DepGraph::enforcedReduced() const
{
    std::vector<Dep> out;
    for (const Dep &d : deps_) {
        if (d.crossIteration() && !d.covered && !d.redundant)
            out.push_back(d);
    }
    return out;
}

unsigned
DepGraph::numRedundant() const
{
    unsigned n = 0;
    for (const Dep &d : deps_) {
        if (d.redundant)
            ++n;
    }
    return n;
}

std::string
DepGraph::toDot() const
{
    std::ostringstream os;
    os << "digraph \"" << loop_->name << "\" {\n"
       << "  rankdir=TB;\n  node [shape=box];\n";
    for (const dep::Statement &stmt : loop_->body) {
        os << "  \"" << stmt.label << "\"";
        if (stmt.guard.conditional())
            os << " [style=rounded]";
        os << ";\n";
    }
    for (const Dep &d : deps_) {
        os << "  \"" << loop_->body[d.src].label << "\" -> \""
           << loop_->body[d.dst].label << "\" [label=\""
           << depTypeName(d.type) << " (" << d.d1;
        if (loop_->depth == 2)
            os << "," << d.d2;
        os << ")\"";
        if (d.covered)
            os << ", style=dashed";
        else if (d.redundant)
            os << ", style=dotted";
        if (d.type == DepType::anti)
            os << ", color=gray40";
        else if (d.type == DepType::output)
            os << ", color=gray70";
        os << "];\n";
    }
    os << "}\n";
    return os.str();
}

std::string
DepGraph::toString() const
{
    std::ostringstream os;
    os << loop_->name << " dependences:\n";
    for (const Dep &d : deps_)
        os << "  " << depToString(*loop_, d) << "\n";
    return os.str();
}

} // namespace dep
} // namespace psync
