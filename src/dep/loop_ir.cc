#include "dep/loop_ir.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace psync {
namespace dep {

void
Loop::indicesOf(std::uint64_t lpid, long &i, long &j) const
{
    if (depth == 1) {
        i = outer.lo + static_cast<long>(lpid - 1);
        j = 0;
        return;
    }
    long m = inner.count();
    std::uint64_t zero_based = lpid - 1;
    i = outer.lo + static_cast<long>(zero_based / m);
    j = inner.lo + static_cast<long>(zero_based % m);
}

std::uint64_t
Loop::lpidOf(long i, long j) const
{
    if (depth == 1)
        return static_cast<std::uint64_t>(i - outer.lo) + 1;
    long m = inner.count();
    return static_cast<std::uint64_t>(i - outer.lo) * m +
           static_cast<std::uint64_t>(j - inner.lo) + 1;
}

bool
branchTaken(const Loop &loop, std::uint64_t lpid, int branch_id)
{
    if (branch_id < 0)
        return true;
    double p = 0.5;
    if (static_cast<size_t>(branch_id) < loop.branchProb.size())
        p = loop.branchProb[branch_id];
    // One-shot hash: mix seed, iteration and branch id.
    sim::Rng rng(loop.seed * 0x9e3779b97f4a7c15ull + lpid * 2654435761ull +
                 static_cast<std::uint64_t>(branch_id) * 40503u);
    return rng.chance(p);
}

bool
stmtActive(const Loop &loop, const Statement &stmt, std::uint64_t lpid)
{
    if (!stmt.guard.conditional())
        return true;
    bool taken = branchTaken(loop, lpid, stmt.guard.branchId);
    return taken == stmt.guard.onTaken;
}

DataLayout::DataLayout(const Loop &loop, sim::Addr word_bytes)
    : wordBytes(word_bytes)
{
    // Collect per-array, per-dimension index ranges by evaluating
    // each affine subscript at the corners of the iteration space
    // (affine => extrema at corners).
    const long i_corners[2] = {loop.outer.lo, loop.outer.hi};
    const long j_corners[2] = {loop.depth == 2 ? loop.inner.lo : 0,
                               loop.depth == 2 ? loop.inner.hi : 0};

    for (const Statement &stmt : loop.body) {
        for (const ArrayRef &ref : stmt.refs) {
            ArrayInfo *info = nullptr;
            for (auto &a : arrays_) {
                if (a.name == ref.array) {
                    info = &a;
                    break;
                }
            }
            if (info == nullptr) {
                arrays_.push_back(ArrayInfo{});
                info = &arrays_.back();
                info->name = ref.array;
                info->lo.assign(ref.subs.size(), 0);
                info->extent.assign(ref.subs.size(), 0);
                for (size_t d = 0; d < ref.subs.size(); ++d) {
                    info->lo[d] = std::numeric_limits<long>::max();
                    info->extent[d] = std::numeric_limits<long>::min();
                }
            }
            if (info->lo.size() != ref.subs.size())
                sim::fatal("array %s referenced with mismatched ranks",
                           ref.array.c_str());
            for (size_t d = 0; d < ref.subs.size(); ++d) {
                for (long ci : i_corners) {
                    for (long cj : j_corners) {
                        long v = ref.subs[d].eval(ci, cj);
                        info->lo[d] = std::min(info->lo[d], v);
                        // Temporarily store max in extent.
                        info->extent[d] = std::max(info->extent[d], v);
                    }
                }
            }
        }
    }

    // Finalize extents, ordinals and base addresses.
    std::uint64_t ordinal = 0;
    sim::Addr addr = 0;
    for (auto &a : arrays_) {
        a.elements = 1;
        for (size_t d = 0; d < a.lo.size(); ++d) {
            a.extent[d] = a.extent[d] - a.lo[d] + 1;
            a.elements *= static_cast<std::uint64_t>(a.extent[d]);
        }
        a.baseOrdinal = ordinal;
        a.baseAddr = addr;
        ordinal += a.elements;
        addr += a.elements * wordBytes;
    }
    totalElements_ = ordinal;
}

const DataLayout::ArrayInfo &
DataLayout::infoOf(const std::string &name) const
{
    for (const auto &a : arrays_) {
        if (a.name == name)
            return a;
    }
    sim::panic("unknown array %s in data layout", name.c_str());
}

std::uint64_t
DataLayout::elementOrdinal(const ArrayRef &ref, long i, long j) const
{
    const ArrayInfo &a = infoOf(ref.array);
    std::uint64_t ord = 0;
    for (size_t d = 0; d < ref.subs.size(); ++d) {
        long idx = ref.subs[d].eval(i, j) - a.lo[d];
        ord = ord * static_cast<std::uint64_t>(a.extent[d]) +
              static_cast<std::uint64_t>(idx);
    }
    return ord;
}

std::uint64_t
DataLayout::globalOrdinal(const ArrayRef &ref, long i, long j) const
{
    return infoOf(ref.array).baseOrdinal + elementOrdinal(ref, i, j);
}

sim::Addr
DataLayout::addrOf(const ArrayRef &ref, long i, long j) const
{
    return infoOf(ref.array).baseAddr +
           elementOrdinal(ref, i, j) * wordBytes;
}

} // namespace dep
} // namespace psync
