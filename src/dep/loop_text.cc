#include "dep/loop_text.hh"

#include <charconv>
#include <cstdint>
#include <sstream>
#include <vector>

namespace psync {
namespace dep {

namespace {

/**
 * Locale-independent double rendering: shortest form that parses
 * back exactly, so printed branch probabilities round-trip.
 */
std::string
formatDouble(double v)
{
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v,
                             std::chars_format::general);
    return std::string(buf, res.ptr);
}

std::vector<std::string>
splitWords(const std::string &line)
{
    std::vector<std::string> words;
    std::string cur;
    for (char c : line) {
        if (c == '#')
            break;
        if (c == ' ' || c == '\t' || c == '\r') {
            if (!cur.empty()) {
                words.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        words.push_back(cur);
    return words;
}

bool
parseI64(const std::string &w, long long &out)
{
    auto res = std::from_chars(w.data(), w.data() + w.size(), out);
    return res.ec == std::errc{} && res.ptr == w.data() + w.size();
}

bool
parseU64(const std::string &w, std::uint64_t &out)
{
    auto res = std::from_chars(w.data(), w.data() + w.size(), out);
    return res.ec == std::errc{} && res.ptr == w.data() + w.size();
}

bool
parseF64(const std::string &w, double &out)
{
    auto res = std::from_chars(w.data(), w.data() + w.size(), out);
    return res.ec == std::errc{} && res.ptr == w.data() + w.size();
}

} // namespace

std::string
printLoop(const Loop &loop)
{
    std::ostringstream out;
    out << "psync-loop v1\n";
    out << "name " << (loop.name.empty() ? "anon" : loop.name) << "\n";
    out << "depth " << loop.depth << "\n";
    out << "outer " << loop.outer.lo << " " << loop.outer.hi << "\n";
    if (loop.depth == 2)
        out << "inner " << loop.inner.lo << " " << loop.inner.hi
            << "\n";
    out << "seed " << loop.seed << "\n";
    for (double p : loop.branchProb)
        out << "branch " << formatDouble(p) << "\n";
    for (const Statement &stmt : loop.body) {
        out << "stmt " << stmt.label << " cost " << stmt.cost;
        if (stmt.guard.conditional())
            out << " guard " << stmt.guard.branchId << " "
                << (stmt.guard.onTaken ? "taken" : "untaken");
        out << "\n";
        for (const ArrayRef &ref : stmt.refs) {
            out << "ref " << (ref.isWrite ? "write" : "read") << " "
                << ref.array;
            for (const Subscript &sub : ref.subs)
                out << " sub " << sub.coeffI << " " << sub.coeffJ
                    << " " << sub.offset;
            out << "\n";
        }
    }
    out << "end\n";
    return out.str();
}

ParsedLoop
parseLoop(const std::string &text)
{
    ParsedLoop result;
    Loop &loop = result.loop;

    auto fail = [&](int line_no, const std::string &what) {
        result.ok = false;
        result.error =
            "line " + std::to_string(line_no) + ": " + what;
        return result;
    };

    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    bool saw_header = false;
    bool saw_end = false;
    bool saw_inner = false;

    while (std::getline(in, line)) {
        ++line_no;
        std::vector<std::string> w = splitWords(line);
        if (w.empty())
            continue;
        if (saw_end)
            return fail(line_no, "content after 'end'");
        if (!saw_header) {
            if (w.size() != 2 || w[0] != "psync-loop" || w[1] != "v1")
                return fail(line_no,
                            "expected header 'psync-loop v1'");
            saw_header = true;
            continue;
        }

        const std::string &kw = w[0];
        if (kw == "name") {
            if (w.size() != 2)
                return fail(line_no, "name takes one identifier");
            loop.name = w[1];
        } else if (kw == "depth") {
            long long d;
            if (w.size() != 2 || !parseI64(w[1], d) ||
                (d != 1 && d != 2))
                return fail(line_no, "depth must be 1 or 2");
            loop.depth = static_cast<int>(d);
        } else if (kw == "outer" || kw == "inner") {
            long long lo, hi;
            if (w.size() != 3 || !parseI64(w[1], lo) ||
                !parseI64(w[2], hi))
                return fail(line_no, kw + " takes '<lo> <hi>'");
            Bounds b{static_cast<long>(lo), static_cast<long>(hi)};
            if (b.count() <= 0)
                return fail(line_no, kw + " bounds are empty");
            if (kw == "outer") {
                loop.outer = b;
            } else {
                loop.inner = b;
                saw_inner = true;
            }
        } else if (kw == "seed") {
            std::uint64_t s;
            if (w.size() != 2 || !parseU64(w[1], s))
                return fail(line_no, "seed takes a u64");
            loop.seed = s;
        } else if (kw == "branch") {
            double p;
            if (w.size() != 2 || !parseF64(w[1], p) || p < 0.0 ||
                p > 1.0)
                return fail(line_no,
                            "branch takes a probability in [0,1]");
            loop.branchProb.push_back(p);
        } else if (kw == "stmt") {
            // stmt LABEL cost C [guard ID taken|untaken]
            if (w.size() != 4 && w.size() != 7)
                return fail(line_no,
                            "stmt takes '<label> cost <ticks> "
                            "[guard <id> taken|untaken]'");
            if (w[2] != "cost")
                return fail(line_no, "expected 'cost'");
            std::uint64_t cost;
            if (!parseU64(w[3], cost) || cost == 0)
                return fail(line_no, "cost must be a positive u64");
            Statement stmt;
            stmt.label = w[1];
            stmt.cost = static_cast<sim::Tick>(cost);
            if (w.size() == 7) {
                long long id;
                if (w[4] != "guard" || !parseI64(w[5], id) || id < 0)
                    return fail(line_no,
                                "expected 'guard <id> "
                                "taken|untaken'");
                if (w[6] != "taken" && w[6] != "untaken")
                    return fail(line_no,
                                "guard arm must be taken|untaken");
                stmt.guard =
                    Guard{static_cast<int>(id), w[6] == "taken"};
            }
            loop.body.push_back(stmt);
        } else if (kw == "ref") {
            // ref read|write ARRAY sub CI CJ OFF [sub CI CJ OFF]
            if (loop.body.empty())
                return fail(line_no, "ref before any stmt");
            if (w.size() != 7 && w.size() != 11)
                return fail(line_no,
                            "ref takes '<read|write> <array> sub "
                            "<ci> <cj> <off> [sub <ci> <cj> <off>]'");
            if (w[1] != "read" && w[1] != "write")
                return fail(line_no, "ref kind must be read|write");
            ArrayRef ref;
            ref.isWrite = w[1] == "write";
            ref.array = w[2];
            for (size_t base = 3; base < w.size(); base += 4) {
                if (w[base] != "sub")
                    return fail(line_no, "expected 'sub'");
                long long ci, cj, off;
                if (!parseI64(w[base + 1], ci) ||
                    !parseI64(w[base + 2], cj) ||
                    !parseI64(w[base + 3], off))
                    return fail(line_no,
                                "sub takes three integers");
                ref.subs.push_back(
                    Subscript{static_cast<int>(ci),
                              static_cast<int>(cj),
                              static_cast<long>(off)});
            }
            loop.body.back().refs.push_back(ref);
        } else if (kw == "end") {
            if (w.size() != 1)
                return fail(line_no, "end takes no arguments");
            saw_end = true;
        } else {
            return fail(line_no, "unknown directive '" + kw + "'");
        }
    }

    if (!saw_header)
        return fail(line_no, "missing 'psync-loop v1' header");
    if (!saw_end)
        return fail(line_no, "missing 'end'");
    if (loop.depth == 2 && !saw_inner)
        return fail(line_no, "depth 2 loop is missing 'inner'");
    if (loop.depth == 1 && saw_inner)
        return fail(line_no, "depth 1 loop must not declare 'inner'");
    if (loop.body.empty())
        return fail(line_no, "loop body is empty");
    for (const Statement &stmt : loop.body) {
        if (stmt.guard.conditional() &&
            static_cast<size_t>(stmt.guard.branchId) >=
                loop.branchProb.size())
            return fail(line_no, "guard id " +
                                     std::to_string(
                                         stmt.guard.branchId) +
                                     " has no 'branch' declaration");
        for (const ArrayRef &ref : stmt.refs)
            if (ref.subs.size() != static_cast<size_t>(loop.depth))
                return fail(
                    line_no,
                    "ref on '" + ref.array + "' has " +
                        std::to_string(ref.subs.size()) +
                        " subscripts but loop depth is " +
                        std::to_string(loop.depth));
    }

    result.ok = true;
    return result;
}

} // namespace dep
} // namespace psync
