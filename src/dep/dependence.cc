#include "dep/dependence.hh"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>

#include "sim/logging.hh"

namespace psync {
namespace dep {

const char *
depTypeName(DepType type)
{
    switch (type) {
      case DepType::flow:   return "flow";
      case DepType::anti:   return "anti";
      case DepType::output: return "output";
    }
    return "unknown";
}

namespace {

/**
 * Solve coeff * D = (oa - ob) for the iteration-distance vector D
 * between two references with matching coefficients. Returns
 * nullopt when the distance is not a compile-time constant.
 */
std::optional<std::pair<long, long>>
distanceVector(const ArrayRef &ra, const ArrayRef &rb, int depth)
{
    if (ra.subs.size() != rb.subs.size())
        return std::nullopt;

    std::optional<long> di, dj;
    for (size_t d = 0; d < ra.subs.size(); ++d) {
        const Subscript &sa = ra.subs[d];
        const Subscript &sb = rb.subs[d];
        if (sa.coeffI != sb.coeffI || sa.coeffJ != sb.coeffJ)
            return std::nullopt;
        long delta = sa.offset - sb.offset;
        if (sa.coeffI != 0 && sa.coeffJ == 0) {
            if (delta % sa.coeffI != 0)
                return std::nullopt;
            long v = delta / sa.coeffI;
            if (di && *di != v)
                return std::nullopt;
            di = v;
        } else if (sa.coeffI == 0 && sa.coeffJ != 0) {
            if (delta % sa.coeffJ != 0)
                return std::nullopt;
            long v = delta / sa.coeffJ;
            if (dj && *dj != v)
                return std::nullopt;
            dj = v;
        } else if (sa.coeffI == 0 && sa.coeffJ == 0) {
            // Constant subscript: the elements conflict only when
            // the offsets are equal; a mismatch means no dependence
            // at all, signalled with a sentinel.
            if (delta != 0) {
                return std::pair<long, long>{
                    std::numeric_limits<long>::max(),
                    std::numeric_limits<long>::max()};
            }
        } else {
            // Coupled subscript (both indices in one dimension):
            // out of scope for constant-distance analysis.
            return std::nullopt;
        }
    }

    // An index that no subscript constrains means the same element
    // conflicts at *every* value of that index — the dependence
    // distance is not a constant (e.g. a scalar or A[J] under a
    // doubly nested loop).
    if (!di)
        return std::nullopt;
    if (!dj) {
        if (depth == 2)
            return std::nullopt;
        dj = 0;
    }
    return std::pair<long, long>{*di, *dj};
}

bool
lexPositive(long d1, long d2)
{
    return d1 > 0 || (d1 == 0 && d2 > 0);
}

} // namespace

DepAnalysis
analyze(const Loop &loop)
{
    DepAnalysis result;
    std::map<std::tuple<unsigned, unsigned, unsigned, int, long,
                        long, std::string>, size_t> seen;

    auto add = [&](unsigned src, unsigned dst, DepType type, long d1,
                   long d2, const std::string &array, unsigned src_ref,
                   unsigned dst_ref) {
        // The sink reference is part of a dependence's identity: a
        // statement that reads the same element through two
        // references owes a value to each of them (renaming schemes
        // resolve reads per reference). Source references with the
        // same everything-else are collapsed below instead.
        auto key = std::make_tuple(src, dst, dst_ref,
                                   static_cast<int>(type), d1, d2,
                                   array);
        auto it = seen.find(key);
        if (it != seen.end()) {
            // Same sink through another source reference. Keep the
            // highest source reference index: within a statement
            // instance writes execute in reference order, so for a
            // flow dependence the textually last write of the
            // element is the one whose value actually reaches the
            // sink (statement-granularity schemes are indifferent
            // to the choice).
            Dep &existing = result.deps[it->second];
            existing.srcRef = std::max(existing.srcRef, src_ref);
            return;
        }
        seen.emplace(key, result.deps.size());
        Dep dep;
        dep.src = src;
        dep.dst = dst;
        dep.type = type;
        dep.d1 = d1;
        dep.d2 = d2;
        dep.array = array;
        dep.srcRef = src_ref;
        dep.dstRef = dst_ref;
        result.deps.push_back(dep);
    };

    const auto &body = loop.body;
    for (unsigned a = 0; a < body.size(); ++a) {
        for (unsigned b = a; b < body.size(); ++b) {
            for (unsigned ia = 0; ia < body[a].refs.size(); ++ia) {
                for (unsigned ib = 0; ib < body[b].refs.size(); ++ib) {
                    const ArrayRef &ra = body[a].refs[ia];
                    const ArrayRef &rb = body[b].refs[ib];
                    if (ra.array != rb.array)
                        continue;
                    if (!ra.isWrite && !rb.isWrite)
                        continue;
                    auto dv = distanceVector(ra, rb, loop.depth);
                    if (!dv) {
                        result.nonConstantPairs.push_back(
                            body[a].label + "/" + body[b].label + ":" +
                            ra.array);
                        continue;
                    }
                    auto [d1, d2] = *dv;
                    if (d1 == std::numeric_limits<long>::max())
                        continue; // disjoint constant elements

                    unsigned src = a, dst = b;
                    unsigned src_ref = ia, dst_ref = ib;
                    const ArrayRef *rs = &ra, *rd = &rb;
                    if (lexPositive(-d1, -d2) ||
                        (d1 == 0 && d2 == 0 && a > b)) {
                        // Conflict points backwards: the textually
                        // later/lexically earlier access is source.
                        std::swap(src, dst);
                        std::swap(src_ref, dst_ref);
                        std::swap(rs, rd);
                        d1 = -d1;
                        d2 = -d2;
                    }
                    if (d1 == 0 && d2 == 0 && src == dst)
                        continue; // same instance, no ordering needed

                    DepType type;
                    if (rs->isWrite && !rd->isWrite)
                        type = DepType::flow;
                    else if (!rs->isWrite && rd->isWrite)
                        type = DepType::anti;
                    else
                        type = DepType::output;
                    add(src, dst, type, d1, d2, ra.array, src_ref,
                        dst_ref);
                }
            }
        }
    }
    return result;
}

std::string
depToString(const Loop &loop, const Dep &dep)
{
    std::ostringstream os;
    os << depTypeName(dep.type) << " " << loop.body[dep.src].label
       << "->" << loop.body[dep.dst].label << " d=(" << dep.d1;
    if (loop.depth == 2)
        os << "," << dep.d2;
    os << ")";
    if (dep.covered)
        os << " [covered]";
    if (dep.redundant)
        os << " [redundant]";
    return os.str();
}

} // namespace dep
} // namespace psync
