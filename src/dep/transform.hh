/**
 * @file
 * Loop-transformation helpers for the paper's section 5 examples.
 *
 * Implicit coalescing (linearization) of a depth-2 loop needs no IR
 * rewrite here: codegen executes iteration `lpid` at indices
 * `Loop::indicesOf(lpid)` and enforces dependences at their
 * linearized distances, which automatically introduces the paper's
 * "extra dependences" at inner-loop boundaries. This module holds
 * the helpers that reason about those boundaries and the wavefront
 * schedule used as the Example 1 baseline.
 */

#ifndef PSYNC_DEP_TRANSFORM_HH
#define PSYNC_DEP_TRANSFORM_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "dep/dependence.hh"
#include "dep/loop_ir.hh"

namespace psync {
namespace dep {

/**
 * True if iteration `lpid` of `loop` has an in-bounds source
 * instance for `dep` — i.e., the dependence is real there and not
 * one of the extra arcs introduced by linearization (Fig. 5.2,
 * dashed arrows).
 */
bool sinkHasSource(const Loop &loop, const Dep &dep,
                   std::uint64_t lpid);

/**
 * Count iterations for which `dep` is enforced by linearization
 * but has no real source (lost-parallelism metric of Example 2).
 */
std::uint64_t extraDepCount(const Loop &loop, const Dep &dep);

/**
 * Anti-diagonal wavefront schedule of a 2-D iteration space: front
 * w holds all (i, j) with (i - i_lo) + (j - j_lo) == w. Used as the
 * barrier-synchronized baseline of Example 1 (Fig. 5.1c).
 */
std::vector<std::vector<std::pair<long, long>>>
makeWavefronts(const Bounds &i_bounds, const Bounds &j_bounds);

} // namespace dep
} // namespace psync

#endif // PSYNC_DEP_TRANSFORM_HH
