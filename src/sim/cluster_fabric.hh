/**
 * @file
 * Two-level hierarchical synchronization fabric.
 *
 * SynCron-style composition of the paper's section-6 register
 * organization: processors are grouped into clusters, each with its
 * own synchronization-register images and a private local broadcast
 * bus, and the clusters are joined by one global serialization
 * stage. Same-cluster synchronization never leaves the cluster —
 * polls spin on free local images and a write reaches its
 * own-cluster waiters after one local-bus broadcast — while
 * cross-cluster visibility rides a per-(cluster, variable)-coalesced
 * global broadcast. Fetch&adds serialize at the global stage, but
 * concurrent increments from one cluster batch into a single global
 * transaction whose pre-values are distributed FIFO to the batch
 * members, so P processors advancing one hot counter cost
 * O(clusters) global transactions per round instead of O(P).
 *
 * This is the scalable counterpart of RegisterSyncFabric: at
 * P = 1024 a flat broadcast bus serializes every update of every
 * processor; here the local buses run in parallel and the global
 * stage only sees per-cluster summaries.
 */

#ifndef PSYNC_SIM_CLUSTER_FABRIC_HH
#define PSYNC_SIM_CLUSTER_FABRIC_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/bus.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/sync_fabric.hh"
#include "sim/tracing.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** Per-cluster register images + local buses + a global stage. */
class HierarchicalSyncFabric : public SyncFabric
{
  public:
    /**
     * @param eq            event queue
     * @param cluster_buses one local broadcast bus per cluster
     *                      (owned by the machine; must outlive the
     *                      fabric)
     * @param global_bus    the global serialization stage
     * @param num_procs     processors, split evenly over clusters
     * @param capacity      registers per cluster image
     * @param coalesce      enable pending-write coalescing (local
     *                      and global)
     */
    HierarchicalSyncFabric(EventQueue &eq,
                           std::vector<Bus *> cluster_buses,
                           Bus &global_bus, unsigned num_procs,
                           unsigned capacity, bool coalesce = true,
                           Tracer *tracer = nullptr);

    FabricKind kind() const override
    {
        return FabricKind::hierarchical;
    }

    SyncVarId allocate(unsigned count, SyncWord init_value) override;
    unsigned allocated() const override { return numVars; }
    unsigned capacity() const { return capacity_; }

    unsigned numClusters() const
    {
        return static_cast<unsigned>(clusterBuses.size());
    }

    /** Cluster a processor belongs to. */
    unsigned
    clusterOf(ProcId who) const
    {
        unsigned c = who / procsPerCluster_;
        return c < numClusters() ? c : numClusters() - 1;
    }

    unsigned procsPerCluster() const { return procsPerCluster_; }

    void waitGE(ProcId who, SyncVarId var, SyncWord threshold,
                WaitHandler on_done) override;
    void read(ProcId who, SyncVarId var, ValueHandler on_done) override;
    void write(ProcId who, SyncVarId var, SyncWord value,
               DoneHandler on_done) override;
    void fetchInc(ProcId who, SyncVarId var,
                  ValueHandler on_done) override;

    SyncWord peek(SyncVarId var) const override;
    void poke(SyncVarId var, SyncWord value) override;

    Tick issueCost() const override { return 1; }

    /** Local-bus broadcasts (cluster-internal commits). */
    std::uint64_t localBroadcasts() const
    {
        return static_cast<std::uint64_t>(localBroadcastsStat.value());
    }

    /** Global-stage transactions (cross-cluster commits + incs). */
    std::uint64_t globalBroadcasts() const
    {
        return static_cast<std::uint64_t>(
            globalBroadcastsStat.value());
    }

    /** Writes absorbed into a pending local broadcast. */
    std::uint64_t coalescedLocal() const
    {
        return static_cast<std::uint64_t>(coalescedLocalStat.value());
    }

    /** Cross-cluster updates absorbed into a pending global one. */
    std::uint64_t coalescedGlobal() const
    {
        return static_cast<std::uint64_t>(coalescedGlobalStat.value());
    }

    /** Fetch&adds that joined an already-open cluster batch. */
    std::uint64_t combinedIncs() const
    {
        return static_cast<std::uint64_t>(combinedIncsStat.value());
    }

    void sampleTimeline(Tracer &t, Tick at) const override;

    void dumpStats(std::ostream &os) const override;
    void registerStats(stats::Group &group) const override;

  private:
    struct Waiter
    {
        ProcId who;
        SyncWord threshold;
        Tick started;
        /** FIFO ordering among waiters of the same variable. */
        std::uint64_t seq;
        WaitHandler onDone;
    };

    struct PendingWrite
    {
        SyncWord value;
        /** Value captured when the broadcast won its bus. */
        SyncWord latched = 0;
        bool valid = false;
    };

    /** Open fetch&add batch of one (cluster, var) pair. */
    struct IncBatch
    {
        std::vector<ValueHandler> members;
        bool valid = false;
    };

    /** Latched batch in flight on the global bus (FIFO). */
    struct InflightBatch
    {
        SyncVarId var = 0;
        std::vector<ValueHandler> members;
    };

    /** Deferred completion, one scheduled event per entry (FIFO). */
    struct ReadyOp
    {
        enum class Kind : std::uint8_t
        {
            wake,
            readValue,
            writeDone,
        };

        Kind kind = Kind::wake;
        Tick waited = 0;
        SyncWord value = 0;
        WaitHandler onWait;
        ValueHandler onValue;
        DoneHandler onDone;
    };

    static std::uint64_t
    pairKey(std::uint32_t hi, std::uint32_t lo)
    {
        return (static_cast<std::uint64_t>(hi) << 32) | lo;
    }

    /** Commit `value` into cluster `c`'s image; wake its waiters. */
    void commitCluster(unsigned c, SyncVarId var, SyncWord value);
    /** Forward a locally-committed write to the global stage. */
    void forwardGlobal(ProcId who, unsigned c, SyncVarId var,
                       SyncWord value);
    /** Global stage committed `value`: propagate to every image. */
    void commitGlobal(SyncVarId var, SyncWord value);
    /** Apply the oldest latched fetch&add batch at global done. */
    void applyIncBatch();
    void pushReady(ReadyOp op);
    void runReady();

    EventQueue &eventq;
    std::vector<Bus *> clusterBuses;
    Bus &globalBus;
    unsigned procsPerCluster_;
    unsigned capacity_;
    bool coalesceEnabled;
    Tracer *tracer;
    unsigned numVars = 0;
    std::uint64_t nextWaiterSeq = 0;

    /** Authoritative values, serialized by the global stage. */
    std::vector<SyncWord> values;
    /** Per-cluster local images. */
    std::vector<std::vector<SyncWord>> images;
    /** Waiters spinning on cluster images: [cluster][var]. */
    std::vector<std::vector<std::vector<Waiter>>> waiters;
    /** Blocked waiters per var (tracer-gated timeline shadow). */
    std::unordered_map<SyncVarId, unsigned> activeWaiters;
    /** Pending local write per (proc, var). */
    std::unordered_map<std::uint64_t, PendingWrite> pendingLocal;
    /** Pending global write per (cluster, var). */
    std::unordered_map<std::uint64_t, PendingWrite> pendingGlobal;
    /** Open fetch&add batch per (cluster, var). */
    std::unordered_map<std::uint64_t, IncBatch> openIncs;
    /** Latched batches awaiting global completion, bus FIFO. */
    std::deque<InflightBatch> inflightIncs;
    /** Fetch&add handlers staged per cluster (local buses grant
     *  FIFO), so bus closures never capture fat handlers. */
    std::vector<std::deque<ValueHandler>> localIncs;
    std::deque<ReadyOp> readyOps;

    stats::Scalar localBroadcastsStat;
    stats::Scalar globalBroadcastsStat;
    stats::Scalar coalescedLocalStat;
    stats::Scalar coalescedGlobalStat;
    stats::Scalar combinedIncsStat;
    stats::Scalar localReadsStat;
    stats::Scalar wakeupsStat;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_CLUSTER_FABRIC_HH
