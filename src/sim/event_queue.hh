/**
 * @file
 * Deterministic discrete-event simulation core.
 *
 * Events are closures scheduled at absolute ticks. Ties are broken
 * by insertion order (a monotonically increasing sequence number),
 * which makes every simulation bit-for-bit reproducible regardless
 * of host scheduling.
 *
 * Two interchangeable cores implement that contract:
 *
 *  - `calendar` (default): a bucketed near-future calendar ring for
 *    the short-delta schedules that dominate simulation (issue
 *    costs, poll intervals, bus slots), falling back to a far-future
 *    binary heap for everything past the ring window. Handlers use
 *    a small-buffer-optimized callable, so the steady state does
 *    zero heap allocations.
 *  - `heap`: the classic single binary heap. Kept as the reference
 *    implementation; the equivalence suite asserts both cores yield
 *    bit-identical simulations.
 *
 * Both cores execute the same (when, seq) order, so results never
 * depend on which one runs.
 */

#ifndef PSYNC_SIM_EVENT_QUEUE_HH
#define PSYNC_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** Which event-core implementation drives a simulation. */
enum class EventCoreKind
{
    /** Calendar ring + far-future heap (the fast default). */
    calendar,
    /** Single binary heap (reference for equivalence tests). */
    heap,
};

/** Printable event-core name. */
const char *eventCoreKindName(EventCoreKind kind);

/** The global event queue driving one simulation. */
class EventQueue
{
  public:
    using Handler = InlineFunction<void()>;

    explicit EventQueue(EventCoreKind core = EventCoreKind::calendar)
        : core_(core)
    {
    }

    ~EventQueue() { clear(); }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Which core this queue runs on. */
    EventCoreKind core() const { return core_; }

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /** Total events executed so far (for diagnostics). */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Events whose handler capture spilled to the heap. */
    std::uint64_t heapFallbackEvents() const { return heapFallbacks_; }

    /**
     * Schedule a handler at an absolute tick.
     * @pre when >= now(), except during the pre-run setup phase.
     */
    void schedule(Tick when, Handler handler);

    /** Schedule a handler `delta` ticks from now. */
    void
    scheduleIn(Tick delta, Handler handler)
    {
        schedule(curTick_ + delta, std::move(handler));
    }

    /**
     * Run until the queue drains or `limit` is reached.
     * @return true if the queue drained; false if the tick limit was
     *         hit first (usually a deadlock or livelock in the
     *         simulated synchronization).
     */
    bool run(Tick limit = maxTick);

    /**
     * Drop every pending event without executing it. A limit-hit
     * run leaves undrained handlers whose captures point into the
     * machine being torn down; Machine::~Machine calls this before
     * any component is destroyed so those captures never outlive
     * their targets.
     */
    void clear();

    /** True if no events are pending. */
    bool
    empty() const
    {
        return ringCount_ == 0 && far_.empty();
    }

    /** Number of pending events (diagnostics). */
    std::size_t pendingEvents() const { return ringCount_ + far_.size(); }

    /** Pending events in the calendar ring (0 on the heap core). */
    std::size_t ringEvents() const { return ringCount_; }

    /** Non-empty calendar buckets (0 on the heap core). */
    std::size_t occupiedBuckets() const;

    /** Events parked in the far-future heap. */
    std::size_t farEvents() const { return far_.size(); }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Handler handler;
    };

    /**
     * Ring window, in ticks. Every pending event with
     * when - now() < ringSize lives in bucket (when % ringSize);
     * the window invariant guarantees each bucket holds at most one
     * tick's events at a time.
     */
    static constexpr unsigned ringBits = 10;
    static constexpr unsigned ringSize = 1u << ringBits;
    static constexpr Tick ringMask = ringSize - 1;

    bool runCalendar(Tick limit);
    bool runHeap(Tick limit);

    void pushFar(Event event);
    Event popFar();

    /** Move far events entering the ring window into their buckets. */
    void migrateFar();

    /** Execute every event in `tick`'s bucket, in seq order. */
    void drainBucket(Tick tick);

    /**
     * Earliest tick with a ring event at or after curTick_
     * (maxTick when the ring is empty).
     */
    Tick nextRingTick() const;

    EventCoreKind core_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t heapFallbacks_ = 0;

    /** Calendar buckets; vectors keep their capacity across ticks. */
    std::vector<std::vector<Event>> ring_{ringSize};
    /** One bit per non-empty bucket, for fast next-tick scans. */
    std::array<std::uint64_t, ringSize / 64> occupied_{};
    std::size_t ringCount_ = 0;

    /**
     * Far-future events as a binary min-heap on (when, seq). The
     * heap core stores everything here.
     */
    std::vector<Event> far_;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_EVENT_QUEUE_HH
