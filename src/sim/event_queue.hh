/**
 * @file
 * Deterministic discrete-event simulation core.
 *
 * Events are closures scheduled at absolute ticks. Ties are broken
 * by insertion order (a monotonically increasing sequence number),
 * which makes every simulation bit-for-bit reproducible regardless
 * of host scheduling.
 */

#ifndef PSYNC_SIM_EVENT_QUEUE_HH
#define PSYNC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace psync {
namespace sim {

/** The global event queue driving one simulation. */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /** Total events executed so far (for diagnostics). */
    std::uint64_t eventsExecuted() const { return executed_; }

    /**
     * Schedule a handler at an absolute tick.
     * @pre when >= now(), except during the pre-run setup phase.
     */
    void schedule(Tick when, Handler handler);

    /** Schedule a handler `delta` ticks from now. */
    void
    scheduleIn(Tick delta, Handler handler)
    {
        schedule(curTick_ + delta, std::move(handler));
    }

    /**
     * Run until the queue drains or `limit` is reached.
     * @return true if the queue drained; false if the tick limit was
     *         hit first (usually a deadlock or livelock in the
     *         simulated synchronization).
     */
    bool run(Tick limit = maxTick);

    /** True if no events are pending. */
    bool empty() const { return events_.empty(); }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Handler handler;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_EVENT_QUEUE_HH
