/**
 * @file
 * Interleaved shared-memory model.
 *
 * Addresses are word-interleaved across modules. Each module
 * services one request at a time, so concentrated traffic (the
 * "hot spot" of counter-based barriers, section 6 and Example 4)
 * shows up as module queueing delay. Requests reach a module over
 * the shared data bus.
 *
 * Word values are stored so that memory-resident synchronization
 * variables (keys, full/empty bits, statement counters, shared
 * iteration counters) behave functionally, with atomic
 * read-modify-write performed at the module as on the NYU
 * Ultracomputer or Cedar.
 */

#ifndef PSYNC_SIM_MEMORY_HH
#define PSYNC_SIM_MEMORY_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/interconnect.hh"
#include "sim/stats.hh"
#include "sim/tracing.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** Configuration of the shared memory. */
struct MemoryConfig
{
    /** Number of independent memory modules. */
    unsigned numModules = 8;
    /** Cycles a module takes to service one request. */
    Tick serviceCycles = 4;
    /** Word size used for interleaving, in bytes. */
    Addr wordBytes = 8;
};

/** The interleaved shared memory behind the data bus. */
class Memory
{
  public:
    /** Completion callback for plain accesses. */
    using AccessHandler = InlineFunction<void()>;
    /** Completion callback carrying a loaded or pre-RMW value. */
    using ValueHandler = InlineFunction<void(SyncWord value)>;
    /** Value transformation applied atomically at the module. */
    using Modify = InlineFunction<SyncWord(SyncWord old_value)>;

    Memory(EventQueue &eq, Interconnect &data_net,
           const MemoryConfig &cfg, Tracer *tracer = nullptr);

    /** Which module services an address. */
    unsigned
    moduleOf(Addr addr) const
    {
        return static_cast<unsigned>((addr / config.wordBytes) %
                                     config.numModules);
    }

    /** Read a word; handler receives the value at completion. */
    void read(ProcId who, Addr addr, ValueHandler on_done);

    /**
     * Read a word when only completion timing matters (cache fills
     * that model no data). Same cost as read(); avoids a value
     * adapter closure on the caller's side.
     */
    void readDiscard(ProcId who, Addr addr, AccessHandler on_done);

    /** Write a word; handler runs at completion. */
    void write(ProcId who, Addr addr, SyncWord value,
               AccessHandler on_done);

    /**
     * Atomic read-modify-write at the module. The handler receives
     * the value *before* modification (fetch&add semantics).
     */
    void rmw(ProcId who, Addr addr, Modify modify, ValueHandler on_done);

    /**
     * Occupy `addr`'s module for one service without crossing the
     * interconnect — the module-local retry path of a Cedar-style
     * synchronization processor re-testing a parked keyed request.
     */
    void serviceAtModule(Addr addr, AccessHandler on_done);

    /** Directly set a word without simulating time (setup only). */
    void poke(Addr addr, SyncWord value) { words[addr] = value; }

    /** Directly inspect a word without simulating time. */
    SyncWord
    peek(Addr addr) const
    {
        auto it = words.find(addr);
        return it == words.end() ? 0 : it->second;
    }

    std::uint64_t totalAccesses() const
    {
        return static_cast<std::uint64_t>(accessesStat.total());
    }

    /** Accesses to the single busiest module. */
    std::uint64_t hottestModuleAccesses() const
    {
        return static_cast<std::uint64_t>(accessesStat.maxValue());
    }

    /**
     * Hot-spot ratio: busiest module's share of accesses relative
     * to a perfectly uniform spread (1.0 = uniform).
     */
    double hotSpotRatio() const;

    /** Total cycles requests waited for a busy module. */
    Tick moduleQueueDelay() const
    {
        return static_cast<Tick>(queueDelayStat.value());
    }

    /**
     * Emit per-module timeline samples to `t`: cumulative serviced
     * requests and the instantaneous backlog (service-queue depth in
     * requests, from the module's reserved-until horizon).
     */
    void sampleTimeline(Tracer &t, Tick at) const;

    void dumpStats(std::ostream &os) const;

    /** Register the memory statistics with a walker group. */
    void registerStats(stats::Group &group) const;

  private:
    /**
     * One in-flight request, parked in a free-listed slab so the
     * interconnect grant and module completion events capture only
     * {this, slot}: the user's handler rests here instead of being
     * re-wrapped (and re-allocated) at every hop.
     */
    struct Request
    {
        enum class Kind : std::uint8_t
        {
            read,
            readDiscard,
            write,
            rmw,
        };

        Kind kind = Kind::read;
        ProcId who = 0;
        Addr addr = 0;
        SyncWord value = 0;
        Tick serviceCycles = 0;
        Modify modify;
        ValueHandler onValue;
        AccessHandler onAccess;
        std::uint32_t next = noRequest;
    };

    static constexpr std::uint32_t noRequest = ~0u;

    std::uint32_t allocRequest();
    void freeRequest(std::uint32_t slot);

    /** Issue the module-side portion of a request. */
    void service(std::uint32_t slot);
    /** Interconnect delivered the request to its module. */
    void arrived(std::uint32_t slot);
    /** Module service finished; run the user's handler. */
    void complete(std::uint32_t slot);

    EventQueue &eventq;
    Interconnect &dataNet;
    MemoryConfig config;
    Tracer *tracer;

    std::vector<Tick> moduleFreeAt;
    std::unordered_map<Addr, SyncWord> words;
    std::vector<Request> requests;
    std::uint32_t freeHead = noRequest;

    stats::Vector accessesStat;
    stats::Scalar queueDelayStat;
    stats::Scalar readsStat;
    stats::Scalar writesStat;
    stats::Scalar rmwsStat;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_MEMORY_HH
