/**
 * @file
 * Memory-resident synchronization fabric behind a combining omega
 * network.
 *
 * The NYU Ultracomputer answer to the hot-spot problem (section 6 of
 * the paper measures the problem; the in-network-computing lineage
 * supplies the fix): synchronization words live in interleaved sync
 * modules reached through a log-depth network whose switches merge
 * matching fetch&add packets on the forward pass and decombine the
 * replies on the way back. Concurrent increments (and polls) of one
 * hot counter collapse into a single module operation per combining
 * tree, so the module stops serializing P requests per release.
 *
 * Model shape: the network and the module reservation horizons are
 * both advanced synchronously at injection, in event order, so every
 * operation learns its completion tick (or its combining-tree root)
 * immediately and schedules exactly one event. Variable values are
 * applied at injection time in the same order, which keeps fetch&add
 * pre-values deterministic and makes combining purely a *timing*
 * relief — exactly the quantity the scale scenarios measure.
 * Unsatisfied waits park module-side (the wait-in-memory queue of a
 * combining switch design) and are released by the operation that
 * raises the word, completing one network-return after its module
 * service; the return fan-out is not itself a contention point.
 */

#ifndef PSYNC_SIM_COMBINING_FABRIC_HH
#define PSYNC_SIM_COMBINING_FABRIC_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/omega_network.hh"
#include "sim/stats.hh"
#include "sim/sync_fabric.hh"
#include "sim/tracing.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** Sync variables in modules behind a combining omega network. */
class CombiningSyncFabric : public SyncFabric
{
  public:
    /**
     * @param eq             event queue
     * @param num_ports      injection ports (= processors)
     * @param num_modules    interleaved sync modules
     * @param stage_cycles   network latency per switch stage
     * @param port_cycles    min cycles between injections per port
     * @param service_cycles module service time per operation
     */
    CombiningSyncFabric(EventQueue &eq, unsigned num_ports,
                        unsigned num_modules, Tick stage_cycles,
                        Tick port_cycles, Tick service_cycles,
                        Tracer *tracer = nullptr);

    FabricKind kind() const override { return FabricKind::combining; }

    SyncVarId allocate(unsigned count, SyncWord init_value) override;
    unsigned allocated() const override { return numVars; }

    void waitGE(ProcId who, SyncVarId var, SyncWord threshold,
                WaitHandler on_done) override;
    void read(ProcId who, SyncVarId var, ValueHandler on_done) override;
    void write(ProcId who, SyncVarId var, SyncWord value,
               DoneHandler on_done) override;
    void fetchInc(ProcId who, SyncVarId var,
                  ValueHandler on_done) override;

    SyncWord peek(SyncVarId var) const override;
    void poke(SyncVarId var, SyncWord value) override;

    Tick issueCost() const override { return 1; }

    /** The sync-side combining network (stats, per-stage counters). */
    const CombiningOmegaNetwork &net() const { return network; }

    /** Module an allocated variable interleaves to. */
    unsigned moduleOf(SyncVarId var) const { return var % numModules_; }

    /** Operations serviced at module `m` (combined trees count 1). */
    std::uint64_t moduleOps(unsigned m) const
    {
        return static_cast<std::uint64_t>(moduleOpsStat[m]);
    }

    /** Busiest module's share relative to uniform (1.0 = uniform). */
    double hotSpotRatio() const;

    /** Waits that parked module-side at least once. */
    std::uint64_t parkedWaits() const
    {
        return static_cast<std::uint64_t>(parkedStat.value());
    }

    /** Cycles operations waited for a busy sync module. */
    Tick moduleQueueDelay() const
    {
        return static_cast<Tick>(moduleDelayStat.value());
    }

    void sampleTimeline(Tracer &t, Tick at) const override;
    bool isParked(ProcId who) const override;

    void dumpStats(std::ostream &os) const override;
    void registerStats(stats::Group &group) const override;

  private:
    /**
     * One in-flight operation parked in a free-listed slab so its
     * single completion event captures only {this, slot}. The slot
     * index doubles as the network packet id, so a combining child
     * can look its tree root up directly.
     */
    struct OpState
    {
        enum class Kind : std::uint8_t
        {
            read,
            write,
            rmw,
            poll,
        };

        Kind kind = Kind::read;
        ProcId who = 0;
        SyncVarId var = 0;
        SyncWord value = 0;
        Tick started = 0;
        /** Completion tick, known at injection. */
        Tick completion = 0;
        /** Ultimate root of the combining tree (self when root). */
        std::uint32_t rootSlot = 0;
        WaitHandler onWait;
        DoneHandler onDone;
        ValueHandler onValue;
        std::uint32_t next = noOp;
    };

    static constexpr std::uint32_t noOp = ~0u;

    std::uint32_t allocOp();
    void freeOp(std::uint32_t slot);
    void fireOp(std::uint32_t slot);

    /**
     * Route one packet and reserve its module service; fills
     * `completion` and `rootSlot` of ops[slot]. Returns true when
     * the packet combined (no module visit).
     */
    bool route(std::uint32_t slot, CombineClass cls);

    /** `var` was raised to `value` by an op completing at `done`. */
    void release(SyncVarId var, SyncWord value, Tick done);

    EventQueue &eventq;
    unsigned numModules_;
    Tick serviceCycles;
    Tracer *tracer;
    CombiningOmegaNetwork network;
    unsigned numVars = 0;

    std::vector<SyncWord> values;
    std::vector<Tick> moduleFreeAt;
    std::vector<OpState> ops;
    std::uint32_t freeOps = noOp;

    /**
     * Parked op slots per variable, FIFO by park order. A parked
     * poll keeps its slab slot (it anchors the wait handler and any
     * combining references to its packet id) until release() wakes
     * it.
     */
    std::unordered_map<SyncVarId, std::vector<std::uint32_t>> parked;
    /** Processors currently parked (timeline sampling). */
    std::unordered_set<ProcId> parkedProcs;

    stats::Scalar readsStat;
    stats::Scalar writesStat;
    stats::Scalar rmwsStat;
    stats::Scalar pollsStat;
    stats::Scalar parkedStat;
    stats::Scalar wakeupsStat;
    stats::Scalar moduleDelayStat;
    stats::Vector moduleOpsStat;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_COMBINING_FABRIC_HH
