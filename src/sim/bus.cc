#include "sim/bus.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

Bus::Bus(EventQueue &eq, std::string bus_name, Tick cycles_per_txn,
         Tracer *trace)
    : eventq(eq),
      name_(std::move(bus_name)),
      cyclesPerTxn(cycles_per_txn),
      tracer(trace),
      numTransactions(name_ + ".transactions"),
      busyCyclesStat(name_ + ".busy_cycles"),
      queueDelayStat(name_ + ".queue_delay"),
      maxQueueStat(name_ + ".max_queue")
{
}

void
Bus::transact(ProcId who, GrantHandler on_done)
{
    transact(who, GrantHandler{}, std::move(on_done));
}

void
Bus::transact(ProcId who, GrantHandler on_grant, GrantHandler on_done)
{
    pending.push_back(Request{who, eventq.now(), std::move(on_grant),
                              std::move(on_done)});
    maxQueueStat.updateMax(static_cast<double>(pending.size()));
    PSYNC_TRACE(tracer,
                counterSample(name_ + ".queue_depth", eventq.now(),
                              static_cast<double>(pending.size())));
    if (!granting)
        grantNext();
}

void
Bus::grantNext()
{
    if (pending.empty()) {
        granting = false;
        return;
    }
    granting = true;

    Request req = std::move(pending.front());
    pending.pop_front();

    Tick grant = std::max(eventq.now(), freeAt);
    Tick done = grant + cyclesPerTxn;
    freeAt = done;

    ++numTransactions;
    busyCyclesStat += static_cast<double>(cyclesPerTxn);
    queueDelayStat += static_cast<double>(grant - req.issued);

    PSYNC_DPRINTF(eventq, Bus,
                  "%s grant proc %u (queued %llu cycles)",
                  name_.c_str(), req.who,
                  static_cast<unsigned long long>(grant - req.issued));
    PSYNC_TRACE(tracer, resourceBusy(name_, 0, req.who, grant, done));
    PSYNC_TRACE(tracer,
                counterSample(name_ + ".queue_depth", eventq.now(),
                              static_cast<double>(pending.size())));

    // grant == now() here: arbitration happens either immediately
    // on request or right as the previous transaction completes.
    if (req.onGrant)
        req.onGrant(grant);

    inflightDone = std::move(req.onDone);
    inflightGrant = grant;
    eventq.schedule(done, [this]() {
        GrantHandler handler = std::move(inflightDone);
        Tick granted = inflightGrant;
        handler(granted);
        grantNext();
    });
}

void
Bus::sampleTimeline(Tracer &t, std::uint32_t index, Tick at) const
{
    // busyCyclesStat books a transaction's full occupancy at grant
    // time; back out the not-yet-elapsed tail of an in-flight
    // transaction so consecutive samples difference to the busy
    // cycles actually inside the interval.
    double busy = busyCyclesStat.value();
    if (granting && freeAt > at)
        busy -= static_cast<double>(freeAt - at);
    if (busy < 0)
        busy = 0;
    t.sample(SampleStream::busBusyCycles, index, at, busy);
    t.sample(SampleStream::busQueueDepth, index, at,
             static_cast<double>(pending.size() + (granting ? 1 : 0)));
}

double
Bus::utilization(Tick end_tick) const
{
    if (end_tick == 0)
        return 0.0;
    return busyCyclesStat.value() / static_cast<double>(end_tick);
}

void
Bus::dumpStats(std::ostream &os) const
{
    stats::dump(os, numTransactions);
    stats::dump(os, busyCyclesStat);
    stats::dump(os, queueDelayStat);
    stats::dump(os, maxQueueStat);
}

void
Bus::registerStats(stats::Group &group) const
{
    group.add(numTransactions);
    group.add(busyCyclesStat);
    group.add(queueDelayStat);
    group.add(maxQueueStat);
}

} // namespace sim
} // namespace psync
