#include "sim/processor.hh"

#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

Processor::Processor(EventQueue &eq, ProcId id, SyncFabric &fab,
                     CacheSystem &cache_sys, TraceSink *sink,
                     Tracer *event_tracer)
    : eventq(eq), id_(id), fabric(fab), caches(cache_sys),
      trace(sink), tracer(event_tracer)
{
}

void
Processor::start(Dispatch dispatch)
{
    dispatch_ = std::move(dispatch);
    // Kick off at tick 0 through the queue so all processors start
    // deterministically interleaved.
    eventq.scheduleIn(0, [this]() { fetchNext(); });
}

void
Processor::fetchNext()
{
    Tick fetch_start = eventq.now();
    setActivity(ProcActivity::dispatch);
    dispatch_(id_, [this, fetch_start](const Program *program) {
        tracePhase(TracePhase::dispatch, fetch_start, eventq.now());
        if (program == nullptr) {
            halted_ = true;
            haltTick_ = eventq.now();
            setActivity(ProcActivity::halted);
            PSYNC_DPRINTF(eventq, Proc, "proc %u halted", id_);
            PSYNC_TRACE(tracer, instant("halt", id_, eventq.now()));
            return;
        }
        beginProgram(program);
    });
}

void
Processor::beginProgram(const Program *program)
{
    current = program;
    opIndex = 0;
    ownedPc = false;
    ++programsRun_;
    PSYNC_DPRINTF(eventq, Proc, "proc %u begins program iter %llu",
                  id_,
                  static_cast<unsigned long long>(program->iter));
    step();
}

void
Processor::step()
{
    while (current != nullptr && opIndex < current->ops.size()) {
        const Op &op = current->ops[opIndex];
        ++opIndex;
        switch (op.kind) {
          case OpKind::stmtStart:
            if (trace) {
                trace->stmtStart(op.stmt,
                                 op.iterTag ? op.iterTag
                                            : current->iter,
                                 eventq.now());
            }
            continue;
          case OpKind::stmtEnd:
            if (trace) {
                trace->stmtEnd(op.stmt,
                               op.iterTag ? op.iterTag
                                          : current->iter,
                               eventq.now());
            }
            continue;
          case OpKind::compute:
            execCompute(op);
            return;
          case OpKind::dataRead:
          case OpKind::dataWrite:
            execData(op);
            return;
          case OpKind::syncWaitGE:
            execWaitGE(op);
            return;
          case OpKind::syncWrite:
            execWrite(op);
            return;
          case OpKind::syncFetchInc:
            execFetchInc(op);
            return;
          case OpKind::pcMark:
            execPcMark(op);
            return;
          case OpKind::pcTransfer:
            execPcTransfer(op);
            return;
          case OpKind::ctrBarrier:
            execCtrBarrier(op);
            return;
          case OpKind::keyedRead:
          case OpKind::keyedWrite:
            execKeyed(op);
            return;
        }
    }
    current = nullptr;
    fetchNext();
}

void
Processor::execCompute(const Op &op)
{
    setActivity(ProcActivity::compute);
    computeCycles_ += op.cycles;
    tracePhase(TracePhase::compute, eventq.now(),
               eventq.now() + op.cycles);
    traceOpSpan(op.id, op.kind, 0, opIter(op), eventq.now(),
                eventq.now() + op.cycles);
    eventq.scheduleIn(op.cycles, [this]() { step(); });
}

void
Processor::execData(const Op &op)
{
    setActivity(ProcActivity::stall);
    Tick start = eventq.now();
    bool is_write = op.kind == OpKind::dataWrite;
    auto done = [this, op, start, is_write]() {
        Tick end = eventq.now();
        stallCycles_ += end - start;
        tracePhase(TracePhase::stall, start, end);
        traceOpSpan(op.id, op.kind, 0, opIter(op), start, end);
        if (trace) {
            trace->access(op.stmt, op.ref,
                          op.iterTag ? op.iterTag : current->iter,
                          op.addr, is_write, start, end);
        }
        step();
    };
    if (is_write)
        caches.write(id_, op.addr, done);
    else
        caches.read(id_, op.addr, done);
}

void
Processor::execWaitGE(const Op &op)
{
    ++syncOpsIssued_;
    setActivity(ProcActivity::sync);
    Tick issue = fabric.issueCost();
    syncOverheadCycles_ += issue;
    tracePhase(TracePhase::syncOverhead, eventq.now(),
               eventq.now() + issue);
    Tick start = eventq.now();
    eventq.scheduleIn(issue, [this, op, start]() {
        setActivity(ProcActivity::spin);
        fabric.waitGE(id_, op.var, op.value,
                      [this, op, start](Tick waited) {
            spinCycles_ += waited;
            tracePhase(TracePhase::spin, eventq.now() - waited,
                       eventq.now());
            if (waited > 0) {
                PSYNC_TRACE(tracer,
                            waitEdgeOp(op.var, id_, op.id,
                                       eventq.now() - waited,
                                       eventq.now()));
            }
            traceOpSpan(op.id, op.kind, op.var, opIter(op), start,
                        eventq.now());
            step();
        });
    });
}

void
Processor::execWrite(const Op &op)
{
    ++syncOpsIssued_;
    setActivity(ProcActivity::sync);
    Tick issue = fabric.issueCost();
    syncOverheadCycles_ += issue;
    tracePhase(TracePhase::syncOverhead, eventq.now(),
               eventq.now() + issue);
    Tick start = eventq.now();
    eventq.scheduleIn(issue, [this, op, start]() {
        fabric.write(id_, op.var, op.value, [this, op, start]() {
            // Anything beyond the fixed issue cost (memory-fabric
            // write latency) is synchronization overhead too.
            Tick total = eventq.now() - start;
            Tick fixed = fabric.issueCost();
            syncOverheadCycles_ += total > fixed ? total - fixed : 0;
            tracePhase(TracePhase::syncOverhead, start + fixed,
                       eventq.now());
            traceOpSpan(op.id, op.kind, op.var, opIter(op), start,
                        eventq.now());
            step();
        });
    });
}

void
Processor::execFetchInc(const Op &op)
{
    ++syncOpsIssued_;
    setActivity(ProcActivity::sync);
    Tick issue = fabric.issueCost();
    syncOverheadCycles_ += issue;
    tracePhase(TracePhase::syncOverhead, eventq.now(),
               eventq.now() + issue);
    Tick start = eventq.now();
    eventq.scheduleIn(issue, [this, op, start]() {
        fabric.fetchInc(id_, op.var, [this, op, start](SyncWord) {
            Tick total = eventq.now() - start;
            Tick fixed = fabric.issueCost();
            syncOverheadCycles_ += total > fixed ? total - fixed : 0;
            tracePhase(TracePhase::syncOverhead, start + fixed,
                       eventq.now());
            traceOpSpan(op.id, op.kind, op.var, opIter(op), start,
                        eventq.now());
            step();
        });
    });
}

void
Processor::execPcMark(const Op &op)
{
    ++syncOpsIssued_;
    setActivity(ProcActivity::sync);
    Tick issue = fabric.issueCost();
    syncOverheadCycles_ += issue;
    tracePhase(TracePhase::syncOverhead, eventq.now(),
               eventq.now() + issue);
    std::uint32_t my_owner = PcWord::owner(op.value);
    Tick start = eventq.now();
    eventq.scheduleIn(issue, [this, op, my_owner, start]() {
        if (ownedPc) {
            fabric.write(id_, op.var, op.value, [this, op, start]() {
                traceOpSpan(op.id, op.kind, op.var, opIter(op),
                            start, eventq.now());
                step();
            });
            return;
        }
        fabric.read(id_, op.var,
                    [this, op, my_owner, start](SyncWord cur) {
            std::uint32_t cur_owner = PcWord::owner(cur);
            if (cur_owner < my_owner) {
                // Ownership has not been transferred yet; proceed
                // without waiting (Fig. 4.3).
                ++marksSkipped_;
                traceOpSpan(op.id, op.kind, op.var, opIter(op),
                            start, eventq.now());
                step();
                return;
            }
            if (cur_owner > my_owner) {
                panic("PC %u owned by %u past process %u: ownership "
                      "protocol violated", op.var, cur_owner, my_owner);
            }
            ownedPc = true;
            fabric.write(id_, op.var, op.value, [this, op, start]() {
                traceOpSpan(op.id, op.kind, op.var, opIter(op),
                            start, eventq.now());
                step();
            });
        });
    });
}

void
Processor::execPcTransfer(const Op &op)
{
    ++syncOpsIssued_;
    setActivity(ProcActivity::sync);
    Tick issue = fabric.issueCost();
    syncOverheadCycles_ += issue;
    tracePhase(TracePhase::syncOverhead, eventq.now(),
               eventq.now() + issue);
    Tick start = eventq.now();
    eventq.scheduleIn(issue, [this, op, start]() {
        if (ownedPc) {
            fabric.write(id_, op.var, op.value, [this, op, start]() {
                traceOpSpan(op.id, op.kind, op.var, opIter(op),
                            start, eventq.now());
                step();
            });
            return;
        }
        // get_PC: wait until ownership reaches this process.
        setActivity(ProcActivity::spin);
        fabric.waitGE(id_, op.var, op.aux,
                      [this, op, start](Tick waited) {
            spinCycles_ += waited;
            tracePhase(TracePhase::spin, eventq.now() - waited,
                       eventq.now());
            if (waited > 0) {
                PSYNC_TRACE(tracer,
                            waitEdgeOp(op.var, id_, op.id,
                                       eventq.now() - waited,
                                       eventq.now()));
            }
            ownedPc = true;
            setActivity(ProcActivity::sync);
            fabric.write(id_, op.var, op.value, [this, op, start]() {
                traceOpSpan(op.id, op.kind, op.var, opIter(op),
                            start, eventq.now());
                step();
            });
        });
    });
}

void
Processor::execKeyed(const Op &op)
{
    auto *mem_fab = dynamic_cast<MemorySyncFabric *>(&fabric);
    if (mem_fab == nullptr) {
        panic("keyed access needs memory-resident keys (Cedar "
              "synchronization processors live in the memory "
              "modules)");
    }
    ++syncOpsIssued_;
    setActivity(ProcActivity::sync);
    Tick issue = fabric.issueCost();
    syncOverheadCycles_ += issue;
    tracePhase(TracePhase::syncOverhead, eventq.now(),
               eventq.now() + issue);
    Tick start = eventq.now();
    bool is_write = op.kind == OpKind::keyedWrite;
    // Capture the individual op fields, not the Op: with the extra
    // bookkeeping words the full-Op capture spills the handler past
    // the inline buffer on every keyed access.
    SyncVarId key = op.var;
    SyncWord threshold = op.value;
    Addr addr = op.addr;
    std::uint32_t stmt = op.stmt;
    std::uint16_t ref = op.ref;
    std::uint32_t op_id = op.id;
    std::uint64_t iter = op.iterTag ? op.iterTag : current->iter;
    eventq.scheduleIn(issue, [this, key, threshold, addr, stmt, ref,
                              op_id, iter, start, issue, is_write,
                              mem_fab]() {
        setActivity(ProcActivity::spin);
        mem_fab->keyedAccess(id_, key, threshold,
                             [this, key, addr, stmt, ref, op_id,
                              iter, start, issue,
                              is_write](Tick waited) {
            spinCycles_ += waited;
            tracePhase(TracePhase::spin, eventq.now() - waited,
                       eventq.now());
            // Stall is what remains after the issue cost (already
            // booked as sync overhead) and the spin wait.
            Tick past_issue = eventq.now() - (start + issue);
            stallCycles_ += past_issue > waited
                ? past_issue - waited
                : 0;
            Tick end = eventq.now();
            if (waited > 0) {
                PSYNC_TRACE(tracer,
                            waitEdgeOp(key, id_, op_id,
                                       end - waited, end));
            }
            traceOpSpan(op_id,
                        is_write ? OpKind::keyedWrite
                                 : OpKind::keyedRead,
                        key, iter, start, end);
            if (trace) {
                // The data access happens inside the module
                // service that just completed — after the key test
                // passed — so the record anchors at completion.
                trace->access(stmt, ref, iter, addr, is_write, end,
                              end);
            }
            step();
        });
    });
}

void
Processor::execCtrBarrier(const Op &op)
{
    ++syncOpsIssued_;
    setActivity(ProcActivity::sync);
    Tick issue = fabric.issueCost();
    syncOverheadCycles_ += issue;
    tracePhase(TracePhase::syncOverhead, eventq.now(),
               eventq.now() + issue);
    Tick start = eventq.now();
    std::uint64_t iter = opIter(op);
    eventq.scheduleIn(issue, [this, op, start, issue, iter]() {
        fabric.fetchInc(id_, op.var,
                        [this, op, start, issue,
                         iter](SyncWord old_val) {
            // Capture only scalar pieces in `resume`: the
            // last-arrival path copies it into two more handlers,
            // so a fat closure would spill past the inline buffer.
            std::uint32_t op_id = op.id;
            SyncVarId release = op.aux;
            auto resume = [this, start, iter, op_id, release]() {
                // Spin starts after the issue cost, which is
                // already booked as sync overhead — the trace
                // below always anchored there; the counter now
                // agrees instead of double-counting the issue.
                Tick wait_start = start + fabric.issueCost();
                spinCycles_ += eventq.now() > wait_start
                    ? eventq.now() - wait_start
                    : 0;
                tracePhase(TracePhase::spin, wait_start,
                           eventq.now());
                if (eventq.now() > wait_start) {
                    PSYNC_TRACE(tracer,
                                waitEdgeOp(release, id_, op_id,
                                           wait_start,
                                           eventq.now()));
                }
                traceOpSpan(op_id, OpKind::ctrBarrier, release,
                            iter, start, eventq.now());
                step();
            };
            std::uint64_t num_procs = op.cycles;
            setActivity(ProcActivity::spin);
            if (old_val + 1 == op.value * num_procs) {
                // Last arrival: release this generation.
                SyncWord gen = op.value;
                fabric.write(id_, release, gen, [this, release, gen,
                                                 resume]() {
                    fabric.waitGE(id_, release, gen,
                                  [resume](Tick) { resume(); });
                });
            } else {
                fabric.waitGE(id_, release, op.value,
                              [resume](Tick) { resume(); });
            }
        });
    });
}

void
Processor::dumpStats(std::ostream &os) const
{
    os << "proc" << id_ << ": compute=" << computeCycles_
       << " spin=" << spinCycles_ << " sync=" << syncOverheadCycles_
       << " stall=" << stallCycles_ << " sync_ops=" << syncOpsIssued_
       << " programs=" << programsRun_ << " halt=" << haltTick_
       << "\n";
}

} // namespace sim
} // namespace psync
