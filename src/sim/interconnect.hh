/**
 * @file
 * Abstract processor-memory interconnect.
 *
 * The paper scopes its scheme to "small scale multiprocessor
 * systems such as the Cray X-MP, the Alliant FX/8, the Encore
 * Multimax" — bus-based machines — while crediting data-oriented
 * schemes to large-scale systems (Cedar, RP3, HEP) built around
 * multistage networks. Both interconnects implement this
 * interface so that scoping claim can be measured (bench E13).
 */

#ifndef PSYNC_SIM_INTERCONNECT_HH
#define PSYNC_SIM_INTERCONNECT_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "sim/inline_function.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** A transport from processors to memory modules. */
class Interconnect
{
  public:
    using GrantHandler = InlineFunction<void(Tick grant_tick)>;

    virtual ~Interconnect() = default;

    /**
     * Queue a transaction; `on_done` runs when the payload has
     * been delivered to the far side.
     */
    virtual void transact(ProcId who, GrantHandler on_done) = 0;

    /**
     * Queue a transaction with a grant hook fired the moment the
     * transaction is committed to the wire (used for write
     * coalescing windows).
     */
    virtual void transact(ProcId who, GrantHandler on_grant,
                          GrantHandler on_done) = 0;

    /** Completed transactions. */
    virtual std::uint64_t transactions() const = 0;

    /** Cycles spent waiting for arbitration/injection. */
    virtual Tick queueDelay() const = 0;

    /** Fraction of capacity used over [0, end_tick]. */
    virtual double utilization(Tick end_tick) const = 0;

    virtual void dumpStats(std::ostream &os) const = 0;

    /** Register the transport's statistics with a walker group. */
    virtual void registerStats(stats::Group &group) const = 0;

    virtual const std::string &name() const = 0;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_INTERCONNECT_HH
