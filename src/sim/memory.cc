#include "sim/memory.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

Memory::Memory(EventQueue &eq, Interconnect &data_net,
               const MemoryConfig &cfg, Tracer *trace)
    : eventq(eq),
      dataNet(data_net),
      config(cfg),
      tracer(trace),
      moduleFreeAt(cfg.numModules, 0),
      accessesStat("memory.module_accesses", cfg.numModules),
      queueDelayStat("memory.module_queue_delay"),
      readsStat("memory.reads"),
      writesStat("memory.writes"),
      rmwsStat("memory.rmws")
{
    if (config.numModules == 0)
        fatal("memory must have at least one module");
}

std::uint32_t
Memory::allocRequest()
{
    if (freeHead != noRequest) {
        std::uint32_t slot = freeHead;
        freeHead = requests[slot].next;
        return slot;
    }
    std::uint32_t slot = static_cast<std::uint32_t>(requests.size());
    requests.emplace_back();
    return slot;
}

void
Memory::freeRequest(std::uint32_t slot)
{
    Request &req = requests[slot];
    req.modify.reset();
    req.onValue.reset();
    req.onAccess.reset();
    req.next = freeHead;
    freeHead = slot;
}

void
Memory::service(std::uint32_t slot)
{
    unsigned module = moduleOf(requests[slot].addr);
    accessesStat[module] += 1;

    dataNet.transact(requests[slot].who,
                     [this, slot](Tick) { arrived(slot); });
}

void
Memory::arrived(std::uint32_t slot)
{
    const Request &req = requests[slot];
    unsigned module = moduleOf(req.addr);
    Tick arrive = eventq.now();
    Tick start = std::max(arrive, moduleFreeAt[module]);
    Tick done = start + req.serviceCycles;
    moduleFreeAt[module] = done;
    queueDelayStat += static_cast<double>(start - arrive);
    PSYNC_DPRINTF(eventq, Mem,
                  "module %u service proc %u [%llu, %llu)",
                  module, req.who,
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(done));
    PSYNC_TRACE(tracer,
                resourceBusy("memory.module", module, req.who, start,
                             done));
    eventq.schedule(done, [this, slot]() { complete(slot); });
}

void
Memory::complete(std::uint32_t slot)
{
    Request &req = requests[slot];
    Addr addr = req.addr;
    switch (req.kind) {
      case Request::Kind::read: {
        ValueHandler on_done = std::move(req.onValue);
        freeRequest(slot);
        on_done(peek(addr));
        return;
      }
      case Request::Kind::readDiscard: {
        AccessHandler on_done = std::move(req.onAccess);
        freeRequest(slot);
        on_done();
        return;
      }
      case Request::Kind::write: {
        words[addr] = req.value;
        AccessHandler on_done = std::move(req.onAccess);
        freeRequest(slot);
        on_done();
        return;
      }
      case Request::Kind::rmw: {
        SyncWord old_value = peek(addr);
        words[addr] = req.modify(old_value);
        ValueHandler on_done = std::move(req.onValue);
        freeRequest(slot);
        on_done(old_value);
        return;
      }
    }
}

void
Memory::read(ProcId who, Addr addr, ValueHandler on_done)
{
    ++readsStat;
    std::uint32_t slot = allocRequest();
    Request &req = requests[slot];
    req.kind = Request::Kind::read;
    req.who = who;
    req.addr = addr;
    req.serviceCycles = config.serviceCycles;
    req.onValue = std::move(on_done);
    service(slot);
}

void
Memory::readDiscard(ProcId who, Addr addr, AccessHandler on_done)
{
    ++readsStat;
    std::uint32_t slot = allocRequest();
    Request &req = requests[slot];
    req.kind = Request::Kind::readDiscard;
    req.who = who;
    req.addr = addr;
    req.serviceCycles = config.serviceCycles;
    req.onAccess = std::move(on_done);
    service(slot);
}

void
Memory::write(ProcId who, Addr addr, SyncWord value,
              AccessHandler on_done)
{
    ++writesStat;
    std::uint32_t slot = allocRequest();
    Request &req = requests[slot];
    req.kind = Request::Kind::write;
    req.who = who;
    req.addr = addr;
    req.value = value;
    req.serviceCycles = config.serviceCycles;
    req.onAccess = std::move(on_done);
    service(slot);
}

void
Memory::rmw(ProcId who, Addr addr, Modify modify, ValueHandler on_done)
{
    // An atomic read-modify-write holds the module for a read plus
    // a write; serialized arrivals at one hot word pay the full
    // double service each (the fetch&add funnel of Example 4).
    ++rmwsStat;
    std::uint32_t slot = allocRequest();
    Request &req = requests[slot];
    req.kind = Request::Kind::rmw;
    req.who = who;
    req.addr = addr;
    req.serviceCycles = 2 * config.serviceCycles;
    req.modify = std::move(modify);
    req.onValue = std::move(on_done);
    service(slot);
}

void
Memory::serviceAtModule(Addr addr, AccessHandler on_done)
{
    unsigned module = moduleOf(addr);
    accessesStat[module] += 1;
    Tick arrive = eventq.now();
    Tick start = std::max(arrive, moduleFreeAt[module]);
    Tick done = start + config.serviceCycles;
    moduleFreeAt[module] = done;
    queueDelayStat += static_cast<double>(start - arrive);
    PSYNC_TRACE(tracer, resourceBusy("memory.module", module,
                                     /*who=*/0, start, done));
    eventq.schedule(done, std::move(on_done));
}

void
Memory::sampleTimeline(Tracer &t, Tick at) const
{
    for (unsigned m = 0; m < config.numModules; ++m) {
        t.sample(SampleStream::moduleAccesses, m, at, accessesStat[m]);
        // The reserved-until horizon divided by the service time is
        // the number of requests queued or in service at the module
        // right now (rmw counts double, matching its occupancy).
        double backlog = 0;
        if (moduleFreeAt[m] > at) {
            backlog = static_cast<double>(moduleFreeAt[m] - at) /
                      static_cast<double>(config.serviceCycles);
        }
        t.sample(SampleStream::moduleBacklog, m, at, backlog);
    }
}

double
Memory::hotSpotRatio() const
{
    double total = accessesStat.total();
    if (total == 0)
        return 1.0;
    double uniform = total / config.numModules;
    return accessesStat.maxValue() / uniform;
}

void
Memory::dumpStats(std::ostream &os) const
{
    stats::dump(os, accessesStat);
    stats::dump(os, queueDelayStat);
    stats::dump(os, readsStat);
    stats::dump(os, writesStat);
    stats::dump(os, rmwsStat);
}

void
Memory::registerStats(stats::Group &group) const
{
    group.add(accessesStat);
    group.add(queueDelayStat);
    group.add(readsStat);
    group.add(writesStat);
    group.add(rmwsStat);
}

} // namespace sim
} // namespace psync
