#include "sim/memory.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

Memory::Memory(EventQueue &eq, Interconnect &data_net,
               const MemoryConfig &cfg, Tracer *trace)
    : eventq(eq),
      dataNet(data_net),
      config(cfg),
      tracer(trace),
      moduleFreeAt(cfg.numModules, 0),
      accessesStat("memory.module_accesses", cfg.numModules),
      queueDelayStat("memory.module_queue_delay"),
      readsStat("memory.reads"),
      writesStat("memory.writes"),
      rmwsStat("memory.rmws")
{
    if (config.numModules == 0)
        fatal("memory must have at least one module");
}

void
Memory::service(ProcId who, Addr addr, Tick service_cycles,
                std::function<void(Tick done)> at_done)
{
    unsigned module = moduleOf(addr);
    accessesStat[module] += 1;

    dataNet.transact(who, [this, who, module, service_cycles,
                           at_done = std::move(at_done)](Tick) {
        Tick arrive = eventq.now();
        Tick start = std::max(arrive, moduleFreeAt[module]);
        Tick done = start + service_cycles;
        moduleFreeAt[module] = done;
        queueDelayStat += static_cast<double>(start - arrive);
        PSYNC_DPRINTF(eventq, Mem,
                      "module %u service proc %u [%llu, %llu)",
                      module, who,
                      static_cast<unsigned long long>(start),
                      static_cast<unsigned long long>(done));
        PSYNC_TRACE(tracer,
                    resourceBusy("memory.module", module, who, start,
                                 done));
        eventq.schedule(done, [at_done = std::move(at_done), done]() {
            at_done(done);
        });
    });
}

void
Memory::read(ProcId who, Addr addr, ValueHandler on_done)
{
    ++readsStat;
    service(who, addr, config.serviceCycles,
            [this, addr, on_done = std::move(on_done)](Tick) {
        on_done(peek(addr));
    });
}

void
Memory::write(ProcId who, Addr addr, SyncWord value,
              AccessHandler on_done)
{
    ++writesStat;
    service(who, addr, config.serviceCycles,
            [this, addr, value, on_done = std::move(on_done)](Tick) {
        words[addr] = value;
        on_done();
    });
}

void
Memory::rmw(ProcId who, Addr addr, Modify modify, ValueHandler on_done)
{
    // An atomic read-modify-write holds the module for a read plus
    // a write; serialized arrivals at one hot word pay the full
    // double service each (the fetch&add funnel of Example 4).
    ++rmwsStat;
    service(who, addr, 2 * config.serviceCycles,
            [this, addr, modify = std::move(modify),
             on_done = std::move(on_done)](Tick) {
        SyncWord old_value = peek(addr);
        words[addr] = modify(old_value);
        on_done(old_value);
    });
}

void
Memory::serviceAtModule(Addr addr, AccessHandler on_done)
{
    unsigned module = moduleOf(addr);
    accessesStat[module] += 1;
    Tick arrive = eventq.now();
    Tick start = std::max(arrive, moduleFreeAt[module]);
    Tick done = start + config.serviceCycles;
    moduleFreeAt[module] = done;
    queueDelayStat += static_cast<double>(start - arrive);
    PSYNC_TRACE(tracer, resourceBusy("memory.module", module,
                                     /*who=*/0, start, done));
    eventq.schedule(done, std::move(on_done));
}

double
Memory::hotSpotRatio() const
{
    double total = accessesStat.total();
    if (total == 0)
        return 1.0;
    double uniform = total / config.numModules;
    return accessesStat.maxValue() / uniform;
}

void
Memory::dumpStats(std::ostream &os) const
{
    stats::dump(os, accessesStat);
    stats::dump(os, queueDelayStat);
    stats::dump(os, readsStat);
    stats::dump(os, writesStat);
    stats::dump(os, rmwsStat);
}

void
Memory::registerStats(stats::Group &group) const
{
    group.add(accessesStat);
    group.add(queueDelayStat);
    group.add(readsStat);
    group.add(writesStat);
    group.add(rmwsStat);
}

} // namespace sim
} // namespace psync
