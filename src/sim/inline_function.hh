/**
 * @file
 * Small-buffer-optimized, move-only callable wrapper.
 *
 * The simulation hot path schedules millions of short-lived
 * closures: issue delays, bus grants, module completions, spin
 * polls. `std::function` heap-allocates any capture larger than two
 * pointers, which makes allocation the dominant cost of the event
 * core. InlineFunction stores captures up to `Capacity` bytes
 * inline (no allocation, no indirection beyond one ops-table
 * pointer) and falls back to the heap only for oversized captures —
 * a fallback the event queue counts so tests can pin the steady
 * state at zero.
 *
 * Differences from std::function, all deliberate:
 *  - move-only (handlers are one-shot; copying them is a bug),
 *  - no target_type/target introspection,
 *  - invoking an empty InlineFunction is undefined (callers check
 *    with operator bool, as Bus does for optional grant hooks).
 */

#ifndef PSYNC_SIM_INLINE_FUNCTION_HH
#define PSYNC_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace psync {
namespace sim {

/** Capture bytes stored inline by the simulator handler aliases. */
constexpr std::size_t handlerInlineBytes = 104;

template <typename Signature, std::size_t Capacity = handlerInlineBytes>
class InlineFunction;

template <typename Ret, typename... Args, std::size_t Capacity>
class InlineFunction<Ret(Args...), Capacity>
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<Ret, std::decay_t<F> &,
                                        Args...>>>
    InlineFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(storage_))
                Fn *(new Fn(std::forward<F>(f)));
            ops_ = &heapOps<Fn>;
        }
    }

    InlineFunction(InlineFunction &&other) noexcept
        : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(storage_, other.storage_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** Invoke the wrapped callable. @pre *this is non-empty. */
    Ret
    operator()(Args... args) const
    {
        return ops_->invoke(storage_, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /** True when the capture spilled to the heap (diagnostics). */
    bool
    onHeap() const
    {
        return ops_ != nullptr && ops_->heap;
    }

    /** Drop the wrapped callable, leaving *this empty. */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    /** Inline capture capacity, for static_asserts at call sites. */
    static constexpr std::size_t capacity() { return Capacity; }

  private:
    struct Ops
    {
        Ret (*invoke)(unsigned char *, Args...);
        /** Move-construct from `src` into raw `dst`, destroy src. */
        void (*relocate)(unsigned char *dst, unsigned char *src);
        void (*destroy)(unsigned char *);
        bool heap;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= Capacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static Fn &
    asInline(unsigned char *p)
    {
        return *std::launder(reinterpret_cast<Fn *>(p));
    }

    template <typename Fn>
    static Fn *&
    asHeap(unsigned char *p)
    {
        return *std::launder(reinterpret_cast<Fn **>(p));
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](unsigned char *p, Args... args) -> Ret {
            return asInline<Fn>(p)(std::forward<Args>(args)...);
        },
        [](unsigned char *dst, unsigned char *src) {
            ::new (static_cast<void *>(dst))
                Fn(std::move(asInline<Fn>(src)));
            asInline<Fn>(src).~Fn();
        },
        [](unsigned char *p) { asInline<Fn>(p).~Fn(); },
        /*heap=*/false,
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](unsigned char *p, Args... args) -> Ret {
            return (*asHeap<Fn>(p))(std::forward<Args>(args)...);
        },
        [](unsigned char *dst, unsigned char *src) {
            ::new (static_cast<void *>(dst)) Fn *(asHeap<Fn>(src));
            asHeap<Fn>(src) = nullptr;
        },
        [](unsigned char *p) { delete asHeap<Fn>(p); },
        /*heap=*/true,
    };

    // Mutable so invocation is const, like std::function: handlers
    // captured by const lambdas stay callable.
    alignas(std::max_align_t) mutable unsigned char storage_[Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_INLINE_FUNCTION_HH
