/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis. Simulation results must be reproducible bit-for-bit,
 * so all randomness flows through explicitly seeded generators.
 */

#ifndef PSYNC_SIM_RNG_HH
#define PSYNC_SIM_RNG_HH

#include <cstdint>

namespace psync {
namespace sim {

/**
 * SplitMix64 generator: tiny, fast, and statistically adequate for
 * workload jitter and branch outcomes. Not for cryptography.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /**
     * Uniform integer in [0, bound), bound > 0.
     *
     * Lemire's multiply-and-reject method: exactly uniform (a plain
     * `next() % bound` over-weights small residues) and almost
     * always rejection-free — a retry happens with probability
     * bound / 2^64.
     */
    std::uint64_t
    below(std::uint64_t bound)
    {
        unsigned __int128 product =
            static_cast<unsigned __int128>(next()) * bound;
        auto low = static_cast<std::uint64_t>(product);
        if (low < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                product =
                    static_cast<unsigned __int128>(next()) * bound;
                low = static_cast<std::uint64_t>(product);
            }
        }
        return static_cast<std::uint64_t>(product >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        // hi - lo + 1 wraps to 0 only for the full 64-bit range,
        // where every raw draw is already uniform.
        std::uint64_t span = hi - lo + 1;
        return span == 0 ? next() : lo + below(span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_RNG_HH
