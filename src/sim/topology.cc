#include "sim/topology.hh"

#include <string>
#include <utility>

#include "sim/cluster_fabric.hh"
#include "sim/combining_fabric.hh"
#include "sim/logging.hh"

namespace psync {
namespace sim {

FabricAssembly
buildSyncFabric(const SyncTopology &topo, EventQueue &eq, Memory &mem,
                Tracer *tracer)
{
    FabricAssembly a;
    switch (topo.fabric) {
      case FabricKind::memory:
        a.fabric = std::make_unique<MemorySyncFabric>(
            eq, mem, topo.syncVarBase, topo.pollIntervalCycles,
            topo.cachedSpinning, tracer);
        return a;

      case FabricKind::registers:
        a.syncBus = std::make_unique<Bus>(eq, "sync_bus",
                                          topo.syncBusCycles, tracer);
        a.fabric = std::make_unique<RegisterSyncFabric>(
            eq, *a.syncBus, topo.syncRegisters, topo.coalesceWrites,
            tracer);
        return a;

      case FabricKind::combining:
        a.fabric = std::make_unique<CombiningSyncFabric>(
            eq, topo.numProcs, topo.syncModules, topo.netStageCycles,
            topo.netPortCycles, topo.syncServiceCycles, tracer);
        return a;

      case FabricKind::hierarchical: {
        unsigned clusters = topo.numClusters == 0
            ? 1
            : topo.numClusters;
        std::vector<Bus *> bus_refs;
        bus_refs.reserve(clusters);
        for (unsigned c = 0; c < clusters; ++c) {
            a.clusterBuses.push_back(std::make_unique<Bus>(
                eq, "cluster_bus" + std::to_string(c),
                topo.clusterBusCycles, tracer));
            bus_refs.push_back(a.clusterBuses.back().get());
        }
        a.syncBus = std::make_unique<Bus>(eq, "global_bus",
                                          topo.syncBusCycles, tracer);
        a.fabric = std::make_unique<HierarchicalSyncFabric>(
            eq, std::move(bus_refs), *a.syncBus, topo.numProcs,
            topo.syncRegisters, topo.coalesceWrites, tracer);
        return a;
      }
    }
    fatal("unknown fabric kind");
    return a;
}

} // namespace sim
} // namespace psync
