/**
 * @file
 * Multistage (Omega-class) interconnection network.
 *
 * The large-scale machines the paper associates with data-oriented
 * schemes — Cedar, the RP3, the NYU Ultracomputer — connect
 * processors to memory through log-depth switching networks: no
 * global arbitration, one injection port per processor, pipelined
 * stages. The model here captures exactly the properties that
 * matter for the synchronization comparison:
 *
 *  - per-processor injection ports (bandwidth scales with P),
 *  - log2(max(P, M)) switch stages of fixed latency each,
 *  - injection-port serialization (one flit per port per
 *    `portCycles`),
 *
 * while memory-module contention is still modeled by Memory. Blocking
 * conflicts inside the switch fabric are *not* modeled; this makes
 * the network optimistic, which only strengthens any result where
 * the bus-based configuration still wins.
 */

#ifndef PSYNC_SIM_OMEGA_NETWORK_HH
#define PSYNC_SIM_OMEGA_NETWORK_HH

#include <vector>

#include "sim/event_queue.hh"
#include "sim/interconnect.hh"
#include "sim/stats.hh"

namespace psync {
namespace sim {

/** Log-depth network with per-processor injection ports. */
class OmegaNetwork : public Interconnect
{
  public:
    /**
     * @param eq          event queue
     * @param net_name    statistics name
     * @param num_ports   injection ports (= processors)
     * @param num_stages  switch stages (log2 of endpoints)
     * @param stage_cycles latency per stage
     * @param port_cycles  min cycles between injections per port
     */
    OmegaNetwork(EventQueue &eq, std::string net_name,
                 unsigned num_ports, unsigned num_stages,
                 Tick stage_cycles, Tick port_cycles = 1);

    void transact(ProcId who, GrantHandler on_done) override;
    void transact(ProcId who, GrantHandler on_grant,
                  GrantHandler on_done) override;

    std::uint64_t transactions() const override
    {
        return static_cast<std::uint64_t>(numTransactions.value());
    }

    Tick queueDelay() const override
    {
        return static_cast<Tick>(queueDelayStat.value());
    }

    /** Aggregate utilization across all injection ports. */
    double utilization(Tick end_tick) const override;

    void dumpStats(std::ostream &os) const override;
    void registerStats(stats::Group &group) const override;
    const std::string &name() const override { return name_; }

    unsigned stages() const { return numStages; }
    Tick traversalCycles() const { return numStages * stageCycles; }

  private:
    /**
     * An in-flight callback parked in the slab so its delivery
     * event captures only {this, slot}. Unlike the bus, many
     * transactions traverse the network at once.
     */
    struct Flight
    {
        GrantHandler handler;
        Tick inject = 0;
        std::uint32_t next = noFlight;
    };

    static constexpr std::uint32_t noFlight = ~0u;

    std::uint32_t parkFlight(GrantHandler handler, Tick inject);
    void fireFlight(std::uint32_t slot);

    EventQueue &eventq;
    std::string name_;
    unsigned numStages;
    Tick stageCycles;
    Tick portCycles;
    std::vector<Tick> portFreeAt;
    std::vector<Flight> flights;
    std::uint32_t freeFlight = noFlight;

    stats::Scalar numTransactions;
    stats::Scalar queueDelayStat;
    stats::Scalar busyCyclesStat;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_OMEGA_NETWORK_HH
