/**
 * @file
 * Multistage (Omega-class) interconnection network.
 *
 * The large-scale machines the paper associates with data-oriented
 * schemes — Cedar, the RP3, the NYU Ultracomputer — connect
 * processors to memory through log-depth switching networks: no
 * global arbitration, one injection port per processor, pipelined
 * stages. The model here captures exactly the properties that
 * matter for the synchronization comparison:
 *
 *  - per-processor injection ports (bandwidth scales with P),
 *  - log2(max(P, M)) switch stages of fixed latency each,
 *  - injection-port serialization (one flit per port per
 *    `portCycles`),
 *
 * while memory-module contention is still modeled by Memory. Blocking
 * conflicts inside the switch fabric are *not* modeled; this makes
 * the network optimistic, which only strengthens any result where
 * the bus-based configuration still wins.
 */

#ifndef PSYNC_SIM_OMEGA_NETWORK_HH
#define PSYNC_SIM_OMEGA_NETWORK_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/interconnect.hh"
#include "sim/stats.hh"
#include "sim/tracing.hh"

namespace psync {
namespace sim {

/** Log-depth network with per-processor injection ports. */
class OmegaNetwork : public Interconnect
{
  public:
    /**
     * @param eq          event queue
     * @param net_name    statistics name
     * @param num_ports   injection ports (= processors)
     * @param num_stages  switch stages (log2 of endpoints)
     * @param stage_cycles latency per stage
     * @param port_cycles  min cycles between injections per port
     */
    OmegaNetwork(EventQueue &eq, std::string net_name,
                 unsigned num_ports, unsigned num_stages,
                 Tick stage_cycles, Tick port_cycles = 1);

    void transact(ProcId who, GrantHandler on_done) override;
    void transact(ProcId who, GrantHandler on_grant,
                  GrantHandler on_done) override;

    std::uint64_t transactions() const override
    {
        return static_cast<std::uint64_t>(numTransactions.value());
    }

    Tick queueDelay() const override
    {
        return static_cast<Tick>(queueDelayStat.value());
    }

    /** Aggregate utilization across all injection ports. */
    double utilization(Tick end_tick) const override;

    void dumpStats(std::ostream &os) const override;
    void registerStats(stats::Group &group) const override;
    const std::string &name() const override { return name_; }

    unsigned stages() const { return numStages; }
    Tick traversalCycles() const { return numStages * stageCycles; }

  private:
    /**
     * An in-flight callback parked in the slab so its delivery
     * event captures only {this, slot}. Unlike the bus, many
     * transactions traverse the network at once.
     */
    struct Flight
    {
        GrantHandler handler;
        Tick inject = 0;
        std::uint32_t next = noFlight;
    };

    static constexpr std::uint32_t noFlight = ~0u;

    std::uint32_t parkFlight(GrantHandler handler, Tick inject);
    void fireFlight(std::uint32_t slot);

    EventQueue &eventq;
    std::string name_;
    unsigned numStages;
    Tick stageCycles;
    Tick portCycles;
    std::vector<Tick> portFreeAt;
    std::vector<Flight> flights;
    std::uint32_t freeFlight = noFlight;

    stats::Scalar numTransactions;
    stats::Scalar queueDelayStat;
    stats::Scalar busyCyclesStat;
};

/** Combining class of a packet traversing the combining network. */
enum class CombineClass : std::uint8_t
{
    /** Never combined (plain writes). */
    none,
    /** Same-variable reads/polls merge (one fetch, fanned out). */
    read,
    /** Same-variable fetch&adds merge (adds sum on the way up). */
    fetchAdd,
};

/**
 * Omega network with blocking 2x2 switches and in-network combining
 * of matching packets — the NYU Ultracomputer / RP3 design that
 * relieves the hot-spot the optimistic OmegaNetwork above does not
 * model.
 *
 * Unlike OmegaNetwork (whose contract with existing scenarios pins
 * it bit-identical), this model reserves every switch a packet
 * crosses: a packet arriving at a busy switch waits (the per-stage
 * conflict counters), and a combinable packet arriving while a
 * same-variable packet is still queued in the switch merges into it
 * and travels no further (the per-stage combine counters). The whole
 * traversal is computed at injection time from per-switch
 * reservation horizons, so the caller learns the delivery tick (or
 * the combine tree root) synchronously and schedules exactly one
 * completion event per packet — deterministic and event-cheap at
 * P = 1024.
 *
 * The network carries timing and combining structure only; variable
 * semantics (value application, decombined pre-value distribution)
 * stay with the owning fabric (CombiningSyncFabric).
 */
class CombiningOmegaNetwork
{
  public:
    /**
     * @param net_name     statistics name
     * @param num_ports    injection ports (= processors)
     * @param num_endpoints memory-side endpoints (sync modules)
     * @param stage_cycles latency per switch stage
     * @param port_cycles  min cycles between injections per port
     */
    CombiningOmegaNetwork(std::string net_name, unsigned num_ports,
                          unsigned num_endpoints, Tick stage_cycles,
                          Tick port_cycles = 1);

    /** Outcome of routing one packet, computed at injection. */
    struct Delivery
    {
        /** Absorbed into an in-flight same-variable packet. */
        bool combined = false;
        /** Packet id it merged with (valid when combined). */
        std::uint64_t mergedWith = 0;
        /** Stage index of the merge (valid when combined). */
        unsigned stage = 0;
        /** Arrival tick at the endpoint (valid when !combined). */
        Tick arrive = 0;
    };

    /**
     * Route packet `packet_id` from port `who` to endpoint `dest`,
     * reserving switch occupancy along the way. Pure state update —
     * no events are scheduled; the caller owns completion timing.
     * `var` identifies the combinable quantity; packets only merge
     * with packets of the same (var, cls).
     */
    Delivery inject(ProcId who, unsigned dest, SyncVarId var,
                    CombineClass cls, std::uint64_t packet_id,
                    Tick now);

    /**
     * Extend packet `packet_id`'s wait-buffer residency along its
     * path until `until`. A combining switch holds the entry it
     * recorded at forward time until the reply passes back through
     * it to be decombined, so later same-(var, cls) packets merge
     * during the whole module round trip — without this the
     * combining window is one stage crossing, and staggered
     * arrivals never meet. The owning fabric calls this once it
     * knows the packet's completion tick.
     */
    void holdResidents(ProcId who, unsigned dest, SyncVarId var,
                       CombineClass cls, std::uint64_t packet_id,
                       Tick until);

    unsigned stages() const { return numStages; }
    Tick stageLatency() const { return stageCycles; }

    /** Cycles a reply spends traversing back to its processor. */
    Tick returnCycles() const { return numStages * stageCycles; }

    std::uint64_t transactions() const
    {
        return static_cast<std::uint64_t>(numTransactions.value());
    }

    /** Packets absorbed by combining, all stages. */
    std::uint64_t combinedTotal() const
    {
        return static_cast<std::uint64_t>(combinesStat.total());
    }

    std::uint64_t stageConflicts(unsigned s) const
    {
        return static_cast<std::uint64_t>(conflictsStat[s]);
    }

    Tick stageConflictCycles(unsigned s) const
    {
        return static_cast<Tick>(conflictCyclesStat[s]);
    }

    std::uint64_t stageCombines(unsigned s) const
    {
        return static_cast<std::uint64_t>(combinesStat[s]);
    }

    /** Busy cycles of the single busiest switch of stage `s`. */
    Tick busiestSwitchCycles(unsigned s) const;

    /** Total busy cycles of stage `s` across all its switches. */
    Tick stageBusyCycles(unsigned s) const
    {
        return static_cast<Tick>(stageBusyStat[s]);
    }

    unsigned switchesPerStage() const
    {
        return (1u << endpointBits) / 2;
    }

    /** Port queueing + switch-conflict wait cycles, total. */
    Tick queueDelay() const
    {
        return static_cast<Tick>(queueDelayStat.value());
    }

    /** Emit per-stage conflict/combine samples to `t` at `at`. */
    void sampleTimeline(Tracer &t, Tick at) const;

    void dumpStats(std::ostream &os) const;
    void registerStats(stats::Group &group) const;
    const std::string &name() const { return name_; }

  private:
    /**
     * Most recent combinable packet routed through a switch, per
     * (switch, var, cls): a later same-key packet arriving before
     * `departAt` is still queued alongside it and merges.
     */
    struct Resident
    {
        std::uint64_t packet = 0;
        Tick departAt = 0;
    };

    unsigned switchAt(ProcId who, unsigned dest, unsigned stage) const;
    std::uint64_t residentKey(unsigned global_switch, SyncVarId var,
                              CombineClass cls) const;

    std::string name_;
    unsigned numStages;
    unsigned endpointBits;
    Tick stageCycles;
    Tick portCycles;
    std::vector<Tick> portFreeAt;
    /** Reservation horizon per switch, stage-major. */
    std::vector<Tick> switchFreeAt;
    /** Busy cycles per switch, stage-major (heatmap source). */
    std::vector<Tick> switchBusy;
    std::unordered_map<std::uint64_t, Resident> residents;

    stats::Scalar numTransactions;
    stats::Scalar queueDelayStat;
    stats::Scalar portBusyStat;
    stats::Vector conflictsStat;
    stats::Vector conflictCyclesStat;
    stats::Vector combinesStat;
    stats::Vector stageBusyStat;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_OMEGA_NETWORK_HH
