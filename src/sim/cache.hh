/**
 * @file
 * Private per-processor data caches with write-through invalidate
 * coherence.
 *
 * Section 2.2's correctness requirement (1) assumes a machine where
 * "the process which updates a value in its private cache must wait
 * until the updated value is reflected in the shared memory, or
 * reflected in a coherent cache state" — i.e., write-through with
 * invalidation, the coherence style of the paper-era bus machines.
 * Reads that hit a valid private line cost one cycle and no bus
 * traffic; every write goes through to memory and invalidates other
 * processors' copies of the word.
 *
 * Synchronization variables do not pass through these caches: the
 * register fabric has its own local images, and the memory fabric
 * models cache-style spinning separately (cachedSpinning).
 */

#ifndef PSYNC_SIM_CACHE_HH
#define PSYNC_SIM_CACHE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/memory.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** Private data-cache configuration. */
struct CacheConfig
{
    /** Disabled caches pass every access through to memory. */
    bool enabled = false;
    /** Direct-mapped lines (one word each) per processor. */
    unsigned linesPerProc = 1024;
    /** Cycles for a load hit in the private cache. */
    Tick hitCycles = 1;
};

/** All processors' private caches plus the snooping glue. */
class CacheSystem
{
  public:
    using AccessHandler = InlineFunction<void()>;

    CacheSystem(EventQueue &eq, Memory &mem, unsigned num_procs,
                const CacheConfig &cfg);

    /** Load a word: cache hit or memory fill. */
    void read(ProcId who, Addr addr, AccessHandler on_done);

    /** Store a word: write-through + invalidate other copies. */
    void write(ProcId who, Addr addr, AccessHandler on_done);

    bool enabled() const { return config.enabled; }

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hitsStat.value());
    }

    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(missesStat.value());
    }

    std::uint64_t invalidations() const
    {
        return static_cast<std::uint64_t>(invalidationsStat.value());
    }

    double
    hitRate() const
    {
        double total = hitsStat.value() + missesStat.value();
        return total > 0 ? hitsStat.value() / total : 0.0;
    }

    void dumpStats(std::ostream &os) const;

    /** Register the cache statistics with a walker group. */
    void registerStats(stats::Group &group) const;

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
    };

    unsigned
    indexOf(Addr addr) const
    {
        return static_cast<unsigned>((addr / 8) %
                                     config.linesPerProc);
    }

    Line &lineOf(ProcId who, Addr addr);

    /** Install `addr` in `who`'s cache. */
    void fill(ProcId who, Addr addr);

    /** Remove `addr` from every cache except `who`'s. */
    void invalidateOthers(ProcId who, Addr addr);

    EventQueue &eventq;
    Memory &memory;
    CacheConfig config;
    unsigned numProcs;
    std::vector<std::vector<Line>> lines;

    stats::Scalar hitsStat;
    stats::Scalar missesStat;
    stats::Scalar invalidationsStat;
    stats::Scalar writeThroughsStat;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_CACHE_HH
