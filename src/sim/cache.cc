#include "sim/cache.hh"

#include <utility>

namespace psync {
namespace sim {

CacheSystem::CacheSystem(EventQueue &eq, Memory &mem,
                         unsigned num_procs, const CacheConfig &cfg)
    : eventq(eq),
      memory(mem),
      config(cfg),
      numProcs(num_procs),
      hitsStat("cache.hits"),
      missesStat("cache.misses"),
      invalidationsStat("cache.invalidations"),
      writeThroughsStat("cache.write_throughs")
{
    if (config.enabled) {
        lines.assign(num_procs,
                     std::vector<Line>(config.linesPerProc));
    }
}

CacheSystem::Line &
CacheSystem::lineOf(ProcId who, Addr addr)
{
    return lines[who][indexOf(addr)];
}

void
CacheSystem::fill(ProcId who, Addr addr)
{
    Line &line = lineOf(who, addr);
    line.valid = true;
    line.tag = addr / 8;
}

void
CacheSystem::invalidateOthers(ProcId who, Addr addr)
{
    for (ProcId p = 0; p < numProcs; ++p) {
        if (p == who)
            continue;
        Line &line = lines[p][indexOf(addr)];
        if (line.valid && line.tag == addr / 8) {
            line.valid = false;
            ++invalidationsStat;
        }
    }
}

void
CacheSystem::read(ProcId who, Addr addr, AccessHandler on_done)
{
    if (!config.enabled) {
        memory.readDiscard(who, addr, std::move(on_done));
        return;
    }
    Line &line = lineOf(who, addr);
    if (line.valid && line.tag == addr / 8) {
        ++hitsStat;
        eventq.scheduleIn(config.hitCycles, std::move(on_done));
        return;
    }
    ++missesStat;
    memory.readDiscard(who, addr,
                       [this, who, addr,
                        on_done = std::move(on_done)]() {
        fill(who, addr);
        on_done();
    });
}

void
CacheSystem::write(ProcId who, Addr addr, AccessHandler on_done)
{
    if (!config.enabled) {
        memory.write(who, addr, 0, std::move(on_done));
        return;
    }
    // Write-through: memory is updated on every store; the
    // invalidation rides the same bus transaction (snooping).
    ++writeThroughsStat;
    memory.write(who, addr, 0,
                 [this, who, addr,
                  on_done = std::move(on_done)]() {
        fill(who, addr);
        invalidateOthers(who, addr);
        on_done();
    });
}

void
CacheSystem::dumpStats(std::ostream &os) const
{
    stats::dump(os, hitsStat);
    stats::dump(os, missesStat);
    stats::dump(os, invalidationsStat);
    stats::dump(os, writeThroughsStat);
}

void
CacheSystem::registerStats(stats::Group &group) const
{
    group.add(hitsStat);
    group.add(missesStat);
    group.add(invalidationsStat);
    group.add(writeThroughsStat);
}

} // namespace sim
} // namespace psync
