#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace psync {
namespace sim {

namespace {

std::string
vformat(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    return msg;
}

namespace {

struct ComponentName
{
    const char *name;
    unsigned bit;
};

constexpr ComponentName debugComponents[] = {
    {"sync", DebugSync},   {"bus", DebugBus},
    {"mem", DebugMem},     {"proc", DebugProc},
    {"sched", DebugSched}, {"cache", DebugCache},
    {"net", DebugNet},     {"all", DebugAll},
};

/**
 * -1 = uninitialized; otherwise the active mask. Atomic because
 * parallel bench sweeps (psync_bench --jobs) run simulations on
 * several threads; first-use initialization from the environment is
 * idempotent, so a racing double-init stores the same value.
 */
std::atomic<int> activeMask{-1};

std::string
lowered(const std::string &s)
{
    std::string out = s;
    for (char &c : out) {
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    }
    return out;
}

} // namespace

unsigned
parseDebugFilter(const std::string &spec, std::string *unknown)
{
    unsigned mask = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token =
            lowered(spec.substr(pos, comma - pos));
        // Trim surrounding spaces.
        size_t b = token.find_first_not_of(" \t");
        size_t e = token.find_last_not_of(" \t");
        token = b == std::string::npos
                    ? std::string()
                    : token.substr(b, e - b + 1);
        if (!token.empty()) {
            bool matched = false;
            for (const auto &c : debugComponents) {
                if (token == c.name) {
                    mask |= c.bit;
                    matched = true;
                    break;
                }
            }
            if (!matched && unknown && unknown->empty())
                *unknown = token;
        }
        pos = comma + 1;
    }
    return mask;
}

unsigned
debugMask()
{
    int current = activeMask.load(std::memory_order_relaxed);
    if (current < 0) {
        const char *env = std::getenv("PSYNC_DEBUG");
        std::string unknown;
        unsigned mask =
            env ? parseDebugFilter(env, &unknown) : 0;
        if (!unknown.empty())
            warn("PSYNC_DEBUG: unknown component '%s'",
                 unknown.c_str());
        current = static_cast<int>(mask);
        activeMask.store(current, std::memory_order_relaxed);
    }
    return static_cast<unsigned>(current);
}

void
setDebugMask(unsigned mask)
{
    activeMask.store(static_cast<int>(mask),
                     std::memory_order_relaxed);
}

void
debugPrint(const char *component, Tick tick, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "%10llu: %s: %s\n",
                 static_cast<unsigned long long>(tick), component,
                 msg.c_str());
}

} // namespace sim
} // namespace psync
