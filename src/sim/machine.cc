#include "sim/machine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace psync {
namespace sim {

const char *
interconnectKindName(InterconnectKind kind)
{
    switch (kind) {
      case InterconnectKind::bus:
        return "bus";
      case InterconnectKind::omega:
        return "omega";
    }
    return "unknown";
}

namespace {

/** Switch stages to reach `endpoints` endpoints. */
unsigned
stagesFor(unsigned endpoints)
{
    unsigned stages = 1;
    while ((1u << stages) < endpoints)
        ++stages;
    return stages;
}

} // namespace

Machine::Machine(const MachineConfig &cfg, TraceSink *trace,
                 Tracer *tracer)
    : config_(cfg), tracer_(tracer), eventq_(cfg.eventCore)
{
    if (config_.numProcs == 0)
        fatal("machine needs at least one processor");

    switch (config_.interconnect) {
      case InterconnectKind::bus:
        dataNet_ = std::make_unique<Bus>(eventq_, "data_bus",
                                         config_.dataBusCycles,
                                         tracer);
        break;
      case InterconnectKind::omega:
        dataNet_ = std::make_unique<OmegaNetwork>(
            eventq_, "data_net", config_.numProcs,
            stagesFor(std::max(config_.numProcs,
                               config_.memory.numModules)),
            config_.netStageCycles, config_.netPortCycles);
        break;
    }
    memory_ = std::make_unique<Memory>(eventq_, *dataNet_,
                                       config_.memory, tracer);
    caches_ = std::make_unique<CacheSystem>(
        eventq_, *memory_, config_.numProcs, config_.cache);

    FabricAssembly fab = buildSyncFabric(syncTopologyOf(config_),
                                         eventq_, *memory_, tracer);
    syncBus_ = std::move(fab.syncBus);
    clusterBuses_ = std::move(fab.clusterBuses);
    fabric_ = std::move(fab.fabric);

    processors_.reserve(config_.numProcs);
    for (ProcId id = 0; id < config_.numProcs; ++id) {
        processors_.push_back(std::make_unique<Processor>(
            eventq_, id, *fabric_, *caches_, trace, tracer));
    }
}

Machine::~Machine()
{
    // A tick-limit stop (deadlock detection) leaves undrained
    // events whose handler captures point into the components
    // destroyed below; drop them all before any component dies.
    eventq_.clear();
}

bool
Machine::run(Processor::Dispatch dispatch, Tick limit)
{
    for (auto &proc : processors_)
        proc->start(dispatch);
#ifndef PSYNC_TRACING_DISABLED
    if (tracer_ && config_.timelineInterval > 0)
        return runSampled(limit);
#endif
    bool drained = eventq_.run(limit);
    return drained && allHalted();
}

bool
Machine::allHalted() const
{
    for (const auto &proc : processors_) {
        if (!proc->halted())
            return false;
    }
    return true;
}

bool
Machine::runSampled(Tick limit)
{
    // The resumable event core executes events with when <= chunk
    // limit and pauses with everything else intact, so chunking by
    // interval boundaries observes the exact (when, seq) order of
    // an unchunked run — sampling is passive by construction.
    const Tick interval = config_.timelineInterval;
    Tick last_sampled = eventq_.now();
    sampleTimeline(last_sampled);
    Tick boundary = last_sampled + interval;
    while (boundary < limit) {
        if (eventq_.run(boundary)) {
            // Drained mid-interval: close the timeline with a final
            // (possibly partial) sample at the last executed tick.
            if (eventq_.now() > last_sampled)
                sampleTimeline(eventq_.now());
            return allHalted();
        }
        sampleTimeline(boundary);
        last_sampled = boundary;
        boundary += interval;
    }
    bool drained = eventq_.run(limit);
    if (drained && eventq_.now() > last_sampled)
        sampleTimeline(eventq_.now());
    return drained && allHalted();
}

void
Machine::sampleTimeline(Tick at)
{
#ifndef PSYNC_TRACING_DISABLED
    if (!tracer_)
        return;
    Tracer &t = *tracer_;
    if (Bus *data_bus = dataBus())
        data_bus->sampleTimeline(t, 0, at);
    if (syncBus_)
        syncBus_->sampleTimeline(t, 1, at);
    memory_->sampleTimeline(t, at);
    fabric_->sampleTimeline(t, at);
    t.sample(SampleStream::eventsExecuted, 0, at,
             static_cast<double>(eventq_.eventsExecuted()));
    t.sample(SampleStream::pendingEvents, 0, at,
             static_cast<double>(eventq_.pendingEvents()));
    t.sample(SampleStream::ringBuckets, 0, at,
             static_cast<double>(eventq_.occupiedBuckets()));
    t.sample(SampleStream::farHeapEvents, 0, at,
             static_cast<double>(eventq_.farEvents()));
    t.sample(SampleStream::heapFallbacks, 0, at,
             static_cast<double>(eventq_.heapFallbackEvents()));
    for (ProcId id = 0; id < config_.numProcs; ++id) {
        ProcActivity a = processors_[id]->activity();
        if (a == ProcActivity::spin && fabric_->isParked(id))
            a = ProcActivity::parked;
        t.sample(SampleStream::procActivity, id, at,
                 static_cast<double>(a));
    }
#else
    (void)at;
#endif
}

Tick
Machine::completionTick() const
{
    Tick last = 0;
    for (const auto &proc : processors_)
        last = std::max(last, proc->haltTick());
    return last;
}

void
Machine::dumpStats(std::ostream &os) const
{
    dataNet_->dumpStats(os);
    if (syncBus_)
        syncBus_->dumpStats(os);
    for (const auto &cb : clusterBuses_)
        cb->dumpStats(os);
    memory_->dumpStats(os);
    if (caches_->enabled())
        caches_->dumpStats(os);
    fabric_->dumpStats(os);
    for (const auto &proc : processors_)
        proc->dumpStats(os);
}

void
Machine::registerStats(stats::Group &group) const
{
    dataNet_->registerStats(group);
    if (syncBus_)
        syncBus_->registerStats(group);
    for (const auto &cb : clusterBuses_)
        cb->registerStats(group);
    memory_->registerStats(group);
    if (caches_->enabled())
        caches_->registerStats(group);
    fabric_->registerStats(group);
}

} // namespace sim
} // namespace psync
