#include "sim/machine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace psync {
namespace sim {

const char *
interconnectKindName(InterconnectKind kind)
{
    switch (kind) {
      case InterconnectKind::bus:
        return "bus";
      case InterconnectKind::omega:
        return "omega";
    }
    return "unknown";
}

namespace {

/** Switch stages to reach `endpoints` endpoints. */
unsigned
stagesFor(unsigned endpoints)
{
    unsigned stages = 1;
    while ((1u << stages) < endpoints)
        ++stages;
    return stages;
}

} // namespace

Machine::Machine(const MachineConfig &cfg, TraceSink *trace,
                 Tracer *tracer)
    : config_(cfg), eventq_(cfg.eventCore)
{
    if (config_.numProcs == 0)
        fatal("machine needs at least one processor");

    switch (config_.interconnect) {
      case InterconnectKind::bus:
        dataNet_ = std::make_unique<Bus>(eventq_, "data_bus",
                                         config_.dataBusCycles,
                                         tracer);
        break;
      case InterconnectKind::omega:
        dataNet_ = std::make_unique<OmegaNetwork>(
            eventq_, "data_net", config_.numProcs,
            stagesFor(std::max(config_.numProcs,
                               config_.memory.numModules)),
            config_.netStageCycles, config_.netPortCycles);
        break;
    }
    memory_ = std::make_unique<Memory>(eventq_, *dataNet_,
                                       config_.memory, tracer);
    caches_ = std::make_unique<CacheSystem>(
        eventq_, *memory_, config_.numProcs, config_.cache);

    switch (config_.fabric) {
      case FabricKind::memory:
        fabric_ = std::make_unique<MemorySyncFabric>(
            eventq_, *memory_, config_.syncVarBase,
            config_.pollIntervalCycles, config_.cachedSpinning,
            tracer);
        break;
      case FabricKind::registers:
        syncBus_ = std::make_unique<Bus>(eventq_, "sync_bus",
                                         config_.syncBusCycles,
                                         tracer);
        fabric_ = std::make_unique<RegisterSyncFabric>(
            eventq_, *syncBus_, config_.syncRegisters,
            config_.coalesceWrites, tracer);
        break;
    }

    processors_.reserve(config_.numProcs);
    for (ProcId id = 0; id < config_.numProcs; ++id) {
        processors_.push_back(std::make_unique<Processor>(
            eventq_, id, *fabric_, *caches_, trace, tracer));
    }
}

Machine::~Machine()
{
    // A tick-limit stop (deadlock detection) leaves undrained
    // events whose handler captures point into the components
    // destroyed below; drop them all before any component dies.
    eventq_.clear();
}

bool
Machine::run(Processor::Dispatch dispatch, Tick limit)
{
    for (auto &proc : processors_)
        proc->start(dispatch);
    bool drained = eventq_.run(limit);
    if (drained) {
        for (auto &proc : processors_) {
            if (!proc->halted())
                return false;
        }
    }
    return drained;
}

Tick
Machine::completionTick() const
{
    Tick last = 0;
    for (const auto &proc : processors_)
        last = std::max(last, proc->haltTick());
    return last;
}

void
Machine::dumpStats(std::ostream &os) const
{
    dataNet_->dumpStats(os);
    if (syncBus_)
        syncBus_->dumpStats(os);
    memory_->dumpStats(os);
    if (caches_->enabled())
        caches_->dumpStats(os);
    fabric_->dumpStats(os);
    for (const auto &proc : processors_)
        proc->dumpStats(os);
}

void
Machine::registerStats(stats::Group &group) const
{
    dataNet_->registerStats(group);
    if (syncBus_)
        syncBus_->registerStats(group);
    memory_->registerStats(group);
    if (caches_->enabled())
        caches_->registerStats(group);
    fabric_->registerStats(group);
}

} // namespace sim
} // namespace psync
