/**
 * @file
 * Cycle-level event-tracing interface.
 *
 * Simulator components (processors, buses, memory modules, the
 * synchronization fabrics) report what they are doing through an
 * optional Tracer pointer: per-processor phase intervals (the
 * compute / spin / sync-overhead / stall split the paper argues
 * about), resource occupancy, counter samples and per-sync-variable
 * access events, all stamped with simulator Ticks.
 *
 * The default tracer is null and every hook site guards on the
 * pointer, so an untraced run pays one predicted-not-taken branch
 * per event and records nothing. Defining PSYNC_TRACING_DISABLED
 * removes the hook sites entirely at compile time. Concrete
 * recorders and exporters (Chrome trace-event JSON, per-variable
 * contention summaries) live in core/tracing.{hh,cc}.
 */

#ifndef PSYNC_SIM_TRACING_HH
#define PSYNC_SIM_TRACING_HH

#include <cstdint>
#include <string>

#include "ir/program.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** What a processor was doing over an interval. */
enum class TracePhase
{
    /** Executing statement-body work. */
    compute,
    /** Busy-waiting on a synchronization variable. */
    spin,
    /** Issuing/finishing synchronization operations. */
    syncOverhead,
    /** Waiting for a data access (bus + module + cache). */
    stall,
    /** Fetching the next program from the scheduler. */
    dispatch,
};

/** Short printable phase name ("compute", "spin", ...). */
const char *tracePhaseName(TracePhase phase);

/**
 * A fixed-interval timeline counter stream. The machine samples
 * every stream at each interval boundary (plus once before the run
 * and once at drain), so a timeline consumer can difference
 * cumulative streams and read instantaneous ones directly. The
 * `index` parameter of Tracer::sample selects the entity within a
 * stream (bus number, memory module, sync variable, processor);
 * streams describing a single global quantity use index 0.
 */
enum class SampleStream : std::uint8_t
{
    /** Cumulative busy cycles; index = bus (0 data, 1 sync). */
    busBusyCycles,
    /** Queued + in-flight transactions now; index = bus. */
    busQueueDepth,
    /** Cumulative serviced requests; index = memory module. */
    moduleAccesses,
    /** Requests queued at the module now; index = module. */
    moduleBacklog,
    /** Processors blocked on the variable now; index = sync var. */
    syncVarWaiters,
    /** Instantaneous ProcActivity code; index = processor. */
    procActivity,
    /** Cumulative events executed by the event core. */
    eventsExecuted,
    /** Events pending in the queue now. */
    pendingEvents,
    /** Occupied calendar-ring buckets now (0 on the heap core). */
    ringBuckets,
    /** Events parked in the far-future heap now. */
    farHeapEvents,
    /** Cumulative handler captures spilled to the heap. */
    heapFallbacks,
    /** Cumulative switch-conflict wait cycles; index = net stage. */
    netStageConflictCycles,
    /** Cumulative packets absorbed by combining; index = stage. */
    netStageCombines,
    /** Cumulative busy cycles; index = cluster sync bus. */
    clusterBusBusyCycles,
};

/** Short printable stream name ("bus_busy_cycles", ...). */
const char *sampleStreamName(SampleStream stream);

/**
 * True for streams whose samples are running totals (difference
 * consecutive samples to get a per-interval rate); false for
 * instantaneous state snapshots.
 */
bool sampleStreamCumulative(SampleStream stream);

/** True for streams indexed by an entity id rather than global. */
bool sampleStreamIndexed(SampleStream stream);

/**
 * What a processor is doing at one sampling instant. Unlike
 * TracePhase intervals (which are emitted retroactively at op
 * completion), this is live state, so a processor blocked across
 * many sampling boundaries shows up in every one of them.
 */
enum class ProcActivity : std::uint8_t
{
    /** Fetching the next program from the scheduler. */
    dispatch,
    /** Executing statement-body work. */
    compute,
    /** Waiting for a data access. */
    stall,
    /** Issuing or finishing a synchronization operation. */
    sync,
    /** Busy-waiting on a synchronization variable. */
    spin,
    /** Blocked on a parked (non-polling) wait. */
    parked,
    /** Out of work. */
    halted,
};

/** Number of ProcActivity states (for state-mix tabulation). */
constexpr unsigned numProcActivities = 7;

/** Short printable activity name ("compute", "parked", ...). */
const char *procActivityName(ProcActivity activity);

/**
 * Abstract event consumer. All hooks are passive: a tracer must not
 * schedule events or otherwise perturb the simulation, so a traced
 * run and an untraced run of the same configuration produce
 * identical statistics.
 */
class Tracer
{
  public:
    virtual ~Tracer();

    /**
     * Processor `who` spent [start, end) in `phase`. Intervals of
     * one processor never overlap (the modeled cores are in-order,
     * one operation outstanding at a time); components do not emit
     * empty intervals.
     */
    virtual void phaseInterval(ProcId who, TracePhase phase,
                               Tick start, Tick end) = 0;

    /**
     * Resource `resource[index]` (a bus, a memory module) was
     * occupied over [start, end) on behalf of processor `who`.
     */
    virtual void resourceBusy(const std::string &resource,
                              unsigned index, ProcId who,
                              Tick start, Tick end) = 0;

    /** Sampled counter value (e.g. bus queue depth) at `at`. */
    virtual void counterSample(const std::string &counter, Tick at,
                               double value) = 0;

    /** Instantaneous event (e.g. a sync-bus broadcast) at `at`. */
    virtual void instant(const std::string &name, ProcId who,
                         Tick at) = 0;

    /**
     * Processor `who` performed `op` ("write", "poll", "rmw",
     * "wait", "broadcast", "keyed") on synchronization variable
     * `var` at `at`. Feeds the per-variable contention breakdown.
     */
    virtual void syncVarOp(SyncVarId var, const char *op, ProcId who,
                           Tick at) = 0;

    /**
     * Processor `who` was blocked on synchronization variable `var`
     * over [start, end): the wait began at `start` and the variable
     * reached the awaited threshold at `end`. Emitted once per
     * satisfied wait (never for waits satisfied instantly), by both
     * fabrics and by the Cedar keyed-access path. The blame reducer
     * (core/blame) turns these edges into per-variable wait-chain
     * attribution.
     */
    virtual void waitEdge(SyncVarId var, ProcId who, Tick start,
                          Tick end) = 0;

    /**
     * Like waitEdge, but emitted by the processor for program ops
     * and stamped with the op's stable IR id (assigned by
     * ir::ProgramBuilder at lowering time; 0 for hand-built
     * programs). Lets blame reports attribute spin to the emitting
     * wait *site* across iterations, surviving IR passes that
     * delete or merge neighboring ops. Default is a no-op so
     * existing tracers need no change.
     */
    virtual void
    waitEdgeOp(SyncVarId var, ProcId who, std::uint32_t op_id,
               Tick start, Tick end)
    {
        (void)var; (void)who; (void)op_id; (void)start; (void)end;
    }

    /**
     * Processor `who` executed one program op over [start, end):
     * issue through completion, wait time included. Stamped with
     * the op's stable IR id (0 for hand-built programs), its kind,
     * its sync variable (0 when the op has none) and the iteration
     * it belongs to. Together with waitEdge these spans are the
     * input of the causal critical-path profiler (core/profile):
     * spans give program order per processor, wait edges give the
     * cross-processor arcs. Components do not emit empty spans.
     * Default is a no-op so existing tracers need no change.
     */
    virtual void
    opSpan(ProcId who, std::uint64_t iter, std::uint32_t op_id,
           ir::OpKind kind, SyncVarId var, Tick start, Tick end)
    {
        (void)who; (void)iter; (void)op_id; (void)kind; (void)var;
        (void)start; (void)end;
    }

    /**
     * Timeline sample: `stream[index]` had `value` at tick `at`.
     * Emitted by the machine at fixed interval boundaries when
     * MachineConfig::timelineInterval is nonzero (plus one baseline
     * sample before the run and one at drain). Cumulative streams
     * (sampleStreamCumulative) carry running totals; instantaneous
     * streams carry state snapshots. Sparse streams (per-sync-var
     * waiter counts) only report entities with nonzero values, so a
     * missing sample means zero. Default is a no-op so existing
     * tracers need no change.
     */
    virtual void
    sample(SampleStream stream, std::uint32_t index, Tick at,
           double value)
    {
        (void)stream; (void)index; (void)at; (void)value;
    }

    /**
     * Attach a human-readable label to a synchronization variable
     * (called by the schemes at plan time, e.g. "pc[3]", "key[17]").
     */
    virtual void nameSyncVar(SyncVarId var,
                             const std::string &label) = 0;
};

} // namespace sim
} // namespace psync

/**
 * Hook-site helper: evaluates its arguments and dispatches only
 * when a tracer is attached; compiled out entirely when
 * PSYNC_TRACING_DISABLED is defined.
 */
#ifdef PSYNC_TRACING_DISABLED
#define PSYNC_TRACE(tracer, call)                                   \
    do {                                                            \
    } while (0)
#else
#define PSYNC_TRACE(tracer, call)                                   \
    do {                                                            \
        if (tracer)                                                 \
            (tracer)->call;                                         \
    } while (0)
#endif

#endif // PSYNC_SIM_TRACING_HH
