#include "sim/cluster_fabric.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

HierarchicalSyncFabric::HierarchicalSyncFabric(
    EventQueue &eq, std::vector<Bus *> cluster_buses, Bus &global_bus,
    unsigned num_procs, unsigned capacity, bool coalesce,
    Tracer *trace)
    : eventq(eq),
      clusterBuses(std::move(cluster_buses)),
      globalBus(global_bus),
      capacity_(capacity),
      coalesceEnabled(coalesce),
      tracer(trace),
      localBroadcastsStat("syncfab.hier.local_broadcasts"),
      globalBroadcastsStat("syncfab.hier.global_broadcasts"),
      coalescedLocalStat("syncfab.hier.coalesced_local"),
      coalescedGlobalStat("syncfab.hier.coalesced_global"),
      combinedIncsStat("syncfab.hier.combined_incs"),
      localReadsStat("syncfab.hier.local_reads"),
      wakeupsStat("syncfab.hier.wakeups")
{
    if (clusterBuses.empty())
        fatal("hierarchical fabric needs at least one cluster");
    unsigned n = numClusters();
    procsPerCluster_ = (num_procs + n - 1) / n;
    if (procsPerCluster_ == 0)
        procsPerCluster_ = 1;
    images.resize(n);
    waiters.resize(n);
    localIncs.resize(n);
}

SyncVarId
HierarchicalSyncFabric::allocate(unsigned count, SyncWord init_value)
{
    if (numVars + count > capacity_)
        fatal("hierarchical sync fabric out of registers: want %u "
              "more, have %u of %u", count, numVars, capacity_);
    SyncVarId first = numVars;
    values.resize(numVars + count, init_value);
    for (unsigned c = 0; c < numClusters(); ++c) {
        images[c].resize(numVars + count, init_value);
        waiters[c].resize(numVars + count);
    }
    numVars += count;
    return first;
}

void
HierarchicalSyncFabric::pushReady(ReadyOp op)
{
    readyOps.push_back(std::move(op));
    eventq.scheduleIn(0, [this]() { runReady(); });
}

void
HierarchicalSyncFabric::runReady()
{
    ReadyOp op = std::move(readyOps.front());
    readyOps.pop_front();
    switch (op.kind) {
      case ReadyOp::Kind::wake:
        op.onWait(op.waited);
        return;
      case ReadyOp::Kind::readValue:
        op.onValue(op.value);
        return;
      case ReadyOp::Kind::writeDone:
        op.onDone();
        return;
    }
}

void
HierarchicalSyncFabric::commitCluster(unsigned c, SyncVarId var,
                                      SyncWord value)
{
    images[c][var] = value;
    auto &wait_list = waiters[c][var];
    if (wait_list.empty())
        return;
    std::vector<Waiter> still_waiting;
    still_waiting.reserve(wait_list.size());
    for (auto &w : wait_list) {
        if (images[c][var] >= w.threshold) {
            ++wakeupsStat;
            if (tracer) {
                auto it = activeWaiters.find(var);
                if (it != activeWaiters.end() && --it->second == 0)
                    activeWaiters.erase(it);
            }
            Tick waited = eventq.now() - w.started;
            if (waited > 0) {
                PSYNC_TRACE(tracer, waitEdge(var, w.who, w.started,
                                             eventq.now()));
            }
            ReadyOp ready;
            ready.kind = ReadyOp::Kind::wake;
            ready.waited = waited;
            ready.onWait = std::move(w.onDone);
            pushReady(std::move(ready));
        } else {
            still_waiting.push_back(std::move(w));
        }
    }
    wait_list.swap(still_waiting);
}

void
HierarchicalSyncFabric::waitGE(ProcId who, SyncVarId var,
                               SyncWord threshold, WaitHandler on_done)
{
    ++localReadsStat;
    unsigned c = clusterOf(who);
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u wait v%u >= %llu (cluster %u image %llu)",
                  who, var,
                  static_cast<unsigned long long>(threshold), c,
                  static_cast<unsigned long long>(images[c][var]));
    PSYNC_TRACE(tracer, syncVarOp(var, "wait", who, eventq.now()));
    if (images[c][var] >= threshold) {
        ReadyOp ready;
        ready.kind = ReadyOp::Kind::wake;
        ready.waited = 0;
        ready.onWait = std::move(on_done);
        pushReady(std::move(ready));
        return;
    }
    if (tracer)
        ++activeWaiters[var];
    waiters[c][var].push_back(Waiter{who, threshold, eventq.now(),
                                     nextWaiterSeq++,
                                     std::move(on_done)});
}

void
HierarchicalSyncFabric::read(ProcId who, SyncVarId var,
                             ValueHandler on_done)
{
    ++localReadsStat;
    ReadyOp ready;
    ready.kind = ReadyOp::Kind::readValue;
    ready.value = images[clusterOf(who)][var];
    ready.onValue = std::move(on_done);
    pushReady(std::move(ready));
}

void
HierarchicalSyncFabric::forwardGlobal(ProcId who, unsigned c,
                                      SyncVarId var, SyncWord value)
{
    std::uint64_t gkey = pairKey(c, var);
    auto it = pendingGlobal.find(gkey);
    if (coalesceEnabled && it != pendingGlobal.end() &&
        it->second.valid) {
        // A global broadcast of this variable from this cluster is
        // still waiting for the stage; the newer value covers it.
        it->second.value = value;
        ++coalescedGlobalStat;
        return;
    }
    auto &pw = pendingGlobal[gkey];
    pw.value = value;
    pw.valid = true;
    globalBus.transact(
        who,
        [this, gkey](Tick) {
            auto &entry = pendingGlobal[gkey];
            entry.latched = entry.value;
            entry.valid = false;
        },
        [this, gkey](Tick) {
            SyncVarId var_id =
                static_cast<SyncVarId>(gkey & 0xffffffffu);
            commitGlobal(var_id, pendingGlobal[gkey].latched);
        });
}

void
HierarchicalSyncFabric::commitGlobal(SyncVarId var, SyncWord value)
{
    ++globalBroadcastsStat;
    PSYNC_TRACE(tracer, syncVarOp(var, "broadcast", 0, eventq.now()));
    values[var] = value;
    for (unsigned c = 0; c < numClusters(); ++c)
        commitCluster(c, var, value);
}

void
HierarchicalSyncFabric::write(ProcId who, SyncVarId var,
                              SyncWord value, DoneHandler on_done)
{
    unsigned c = clusterOf(who);
    std::uint64_t key = pairKey(who, var);
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u write v%u = %llu (cluster %u)", who, var,
                  static_cast<unsigned long long>(value), c);
    PSYNC_TRACE(tracer, syncVarOp(var, "write", who, eventq.now()));
    auto it = pendingLocal.find(key);
    if (coalesceEnabled && it != pendingLocal.end() &&
        it->second.valid) {
        it->second.value = value;
        ++coalescedLocalStat;
        PSYNC_TRACE(tracer,
                    syncVarOp(var, "coalesced", who, eventq.now()));
    } else {
        auto &pw = pendingLocal[key];
        pw.value = value;
        pw.valid = true;
        clusterBuses[c]->transact(
            who,
            [this, key](Tick) {
                auto &entry = pendingLocal[key];
                entry.latched = entry.value;
                entry.valid = false;
            },
            [this, key, c](Tick) {
                ProcId writer = static_cast<ProcId>(key >> 32);
                SyncVarId var_id =
                    static_cast<SyncVarId>(key & 0xffffffffu);
                ++localBroadcastsStat;
                SyncWord committed = pendingLocal[key].latched;
                commitCluster(c, var_id, committed);
                forwardGlobal(writer, c, var_id, committed);
            });
    }
    // Posted write: the issuing processor continues immediately.
    ReadyOp ready;
    ready.kind = ReadyOp::Kind::writeDone;
    ready.onDone = std::move(on_done);
    pushReady(std::move(ready));
}

void
HierarchicalSyncFabric::applyIncBatch()
{
    InflightBatch batch = std::move(inflightIncs.front());
    inflightIncs.pop_front();
    ++globalBroadcastsStat;
    SyncWord base = values[batch.var];
    SyncWord count = static_cast<SyncWord>(batch.members.size());
    // Pre-values are handed out FIFO in batch-join order, exactly
    // as a serialized global stage would have granted them.
    for (std::size_t i = 0; i < batch.members.size(); ++i) {
        ReadyOp ready;
        ready.kind = ReadyOp::Kind::readValue;
        ready.value = base + i;
        ready.onValue = std::move(batch.members[i]);
        pushReady(std::move(ready));
    }
    SyncWord committed = base + count;
    values[batch.var] = committed;
    for (unsigned c = 0; c < numClusters(); ++c)
        commitCluster(c, batch.var, committed);
}

void
HierarchicalSyncFabric::fetchInc(ProcId who, SyncVarId var,
                                 ValueHandler on_done)
{
    unsigned c = clusterOf(who);
    PSYNC_TRACE(tracer, syncVarOp(var, "rmw", who, eventq.now()));
    // The handler rests in the per-cluster FIFO (local buses grant
    // FIFO) so the bus closure captures only plain words.
    localIncs[c].push_back(std::move(on_done));
    clusterBuses[c]->transact(who, [this, who, var, c](Tick) {
        ValueHandler handler = std::move(localIncs[c].front());
        localIncs[c].pop_front();
        ++localBroadcastsStat;
        std::uint64_t bkey = pairKey(c, var);
        auto it = openIncs.find(bkey);
        if (it != openIncs.end() && it->second.valid) {
            // The cluster engine already has a global fetch&add
            // queued for this variable: join its batch.
            it->second.members.push_back(std::move(handler));
            ++combinedIncsStat;
            return;
        }
        auto &batch = openIncs[bkey];
        batch.valid = true;
        batch.members.clear();
        batch.members.push_back(std::move(handler));
        globalBus.transact(
            who,
            [this, bkey](Tick) {
                // Grant closes the batch: the transaction on the
                // wire carries exactly the joined members.
                auto &open = openIncs[bkey];
                InflightBatch inflight;
                inflight.var =
                    static_cast<SyncVarId>(bkey & 0xffffffffu);
                inflight.members = std::move(open.members);
                open.members.clear();
                open.valid = false;
                inflightIncs.push_back(std::move(inflight));
            },
            [this](Tick) { applyIncBatch(); });
    });
}

SyncWord
HierarchicalSyncFabric::peek(SyncVarId var) const
{
    return values[var];
}

void
HierarchicalSyncFabric::poke(SyncVarId var, SyncWord value)
{
    values[var] = value;
    for (unsigned c = 0; c < numClusters(); ++c)
        images[c][var] = value;
}

void
HierarchicalSyncFabric::sampleTimeline(Tracer &t, Tick at) const
{
    for (const auto &entry : activeWaiters) {
        t.sample(SampleStream::syncVarWaiters, entry.first, at,
                 static_cast<double>(entry.second));
    }
    for (unsigned c = 0; c < numClusters(); ++c) {
        t.sample(SampleStream::clusterBusBusyCycles, c, at,
                 static_cast<double>(clusterBuses[c]->busyCycles()));
    }
}

void
HierarchicalSyncFabric::dumpStats(std::ostream &os) const
{
    stats::dump(os, localBroadcastsStat);
    stats::dump(os, globalBroadcastsStat);
    stats::dump(os, coalescedLocalStat);
    stats::dump(os, coalescedGlobalStat);
    stats::dump(os, combinedIncsStat);
    stats::dump(os, localReadsStat);
    stats::dump(os, wakeupsStat);
}

void
HierarchicalSyncFabric::registerStats(stats::Group &group) const
{
    group.add(localBroadcastsStat);
    group.add(globalBroadcastsStat);
    group.add(coalescedLocalStat);
    group.add(coalescedGlobalStat);
    group.add(combinedIncsStat);
    group.add(localReadsStat);
    group.add(wakeupsStat);
}

} // namespace sim
} // namespace psync
