#include "sim/sync_fabric.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

const char *
fabricKindName(FabricKind kind)
{
    switch (kind) {
      case FabricKind::memory:
        return "memory";
      case FabricKind::registers:
        return "registers";
      case FabricKind::combining:
        return "combining";
      case FabricKind::hierarchical:
        return "hierarchical";
    }
    return "unknown";
}

//
// MemorySyncFabric
//

MemorySyncFabric::MemorySyncFabric(EventQueue &eq, Memory &mem, Addr base,
                                   Tick poll_interval, bool cached_spin,
                                   Tracer *trace)
    : eventq(eq),
      memory(mem),
      baseAddr(base),
      pollInterval(poll_interval),
      cachedSpin(cached_spin),
      tracer(trace),
      pollsStat("syncfab.mem.polls"),
      writesStat("syncfab.mem.writes"),
      rmwsStat("syncfab.mem.rmws"),
      keyedOpsStat("syncfab.mem.keyed_ops"),
      keyedRetriesStat("syncfab.mem.keyed_retries")
{
    if (pollInterval == 0)
        fatal("poll interval must be at least one cycle");
}

Addr
MemorySyncFabric::addrOf(SyncVarId var) const
{
    return baseAddr + static_cast<Addr>(var) * 8;
}

void
MemorySyncFabric::trackWaitStart(SyncVarId var)
{
    if (tracer)
        ++activeWaiters[var];
}

void
MemorySyncFabric::trackWaitEnd(SyncVarId var)
{
    if (!tracer)
        return;
    auto it = activeWaiters.find(var);
    if (it != activeWaiters.end() && --it->second == 0)
        activeWaiters.erase(it);
}

void
MemorySyncFabric::trackPark(ProcId who)
{
    if (tracer)
        parkedProcs.insert(who);
}

void
MemorySyncFabric::trackUnpark(ProcId who)
{
    if (tracer)
        parkedProcs.erase(who);
}

void
MemorySyncFabric::sampleTimeline(Tracer &t, Tick at) const
{
    for (const auto &entry : activeWaiters) {
        t.sample(SampleStream::syncVarWaiters, entry.first, at,
                 static_cast<double>(entry.second));
    }
}

bool
MemorySyncFabric::isParked(ProcId who) const
{
    return parkedProcs.count(who) != 0;
}

SyncVarId
MemorySyncFabric::allocate(unsigned count, SyncWord init_value)
{
    SyncVarId first = numVars;
    for (unsigned i = 0; i < count; ++i)
        memory.poke(addrOf(first + i), init_value);
    numVars += count;
    return first;
}

std::uint32_t
MemorySyncFabric::allocOp()
{
    if (freeOps != noOp) {
        std::uint32_t slot = freeOps;
        freeOps = ops[slot].next;
        return slot;
    }
    std::uint32_t slot = static_cast<std::uint32_t>(ops.size());
    ops.emplace_back();
    return slot;
}

void
MemorySyncFabric::freeOp(std::uint32_t slot)
{
    OpState &op = ops[slot];
    op.onWait.reset();
    op.onDone.reset();
    op.onValue.reset();
    op.next = freeOps;
    freeOps = slot;
}

void
MemorySyncFabric::pollLoop(std::uint32_t slot)
{
    ++pollsStat;
    PSYNC_TRACE(tracer, syncVarOp(ops[slot].var, "poll",
                                  ops[slot].who, eventq.now()));
    memory.read(ops[slot].who, addrOf(ops[slot].var),
                [this, slot](SyncWord value) {
        pollValue(slot, value);
    });
}

void
MemorySyncFabric::pollValue(std::uint32_t slot, SyncWord value)
{
    OpState &op = ops[slot];
    if (value >= op.threshold) {
        if (eventq.now() > op.started) {
            PSYNC_TRACE(tracer, waitEdge(op.var, op.who, op.started,
                                         eventq.now()));
        }
        trackWaitEnd(op.var);
        WaitHandler on_done = std::move(op.onWait);
        Tick waited = eventq.now() - op.started;
        freeOp(slot);
        on_done(waited);
        return;
    }
    if (cachedSpin) {
        // Spin on the (now cached) copy for free; the next memory
        // fetch happens when a write invalidates it. No poll events
        // tick while parked — the slot just waits on the list.
        op.parkSeq = nextParkSeq++;
        trackPark(op.who);
        parked[op.var].push_back(slot);
        return;
    }
    eventq.scheduleIn(pollInterval,
                      [this, slot]() { pollLoop(slot); });
}

void
MemorySyncFabric::invalidate(SyncVarId var)
{
    auto it = parked.find(var);
    if (it == parked.end() || it->second.empty())
        return;
    std::vector<std::uint32_t> woken;
    woken.swap(it->second);
    // Every parked spinner re-fetches the invalidated word after
    // the poll interval (cache-miss turnaround); a hot word gets a
    // burst of refills queueing at its module. Wake order is FIFO
    // by park order (parkSeq ascends down the list).
    std::sort(woken.begin(), woken.end(),
              [this](std::uint32_t a, std::uint32_t b) {
        return ops[a].parkSeq < ops[b].parkSeq;
    });
    for (std::uint32_t slot : woken) {
        trackUnpark(ops[slot].who);
        eventq.scheduleIn(pollInterval,
                          [this, slot]() { pollLoop(slot); });
    }
}

void
MemorySyncFabric::waitGE(ProcId who, SyncVarId var, SyncWord threshold,
                         WaitHandler on_done)
{
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u wait v%u >= %llu (memory fabric)", who,
                  var, static_cast<unsigned long long>(threshold));
    PSYNC_TRACE(tracer, syncVarOp(var, "wait", who, eventq.now()));
    std::uint32_t slot = allocOp();
    OpState &op = ops[slot];
    op.who = who;
    op.var = var;
    op.threshold = threshold;
    op.started = eventq.now();
    op.onWait = std::move(on_done);
    trackWaitStart(var);
    pollLoop(slot);
}

void
MemorySyncFabric::read(ProcId who, SyncVarId var, ValueHandler on_done)
{
    memory.read(who, addrOf(var), std::move(on_done));
}

void
MemorySyncFabric::write(ProcId who, SyncVarId var, SyncWord value,
                        DoneHandler on_done)
{
    ++writesStat;
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u write v%u = %llu (memory fabric)", who,
                  var, static_cast<unsigned long long>(value));
    PSYNC_TRACE(tracer, syncVarOp(var, "write", who, eventq.now()));
    std::uint32_t slot = allocOp();
    ops[slot].var = var;
    ops[slot].onDone = std::move(on_done);
    memory.write(who, addrOf(var), value,
                 [this, slot]() { writeDone(slot); });
}

void
MemorySyncFabric::writeDone(std::uint32_t slot)
{
    SyncVarId var = ops[slot].var;
    DoneHandler on_done = std::move(ops[slot].onDone);
    freeOp(slot);
    invalidate(var);
    on_done();
}

void
MemorySyncFabric::fetchInc(ProcId who, SyncVarId var,
                           ValueHandler on_done)
{
    ++rmwsStat;
    PSYNC_TRACE(tracer, syncVarOp(var, "rmw", who, eventq.now()));
    std::uint32_t slot = allocOp();
    ops[slot].var = var;
    ops[slot].onValue = std::move(on_done);
    memory.rmw(who, addrOf(var),
               [](SyncWord old_value) { return old_value + 1; },
               [this, slot](SyncWord old_value) {
        fetchIncDone(slot, old_value);
    });
}

void
MemorySyncFabric::fetchIncDone(std::uint32_t slot, SyncWord old_value)
{
    SyncVarId var = ops[slot].var;
    ValueHandler on_done = std::move(ops[slot].onValue);
    freeOp(slot);
    invalidate(var);
    on_done(old_value);
}

void
MemorySyncFabric::keyedService(std::uint32_t slot)
{
    OpState &op = ops[slot];
    SyncVarId key = op.var;
    Addr key_addr = addrOf(key);
    SyncWord current = memory.peek(key_addr);
    if (current >= op.threshold) {
        // Test passed: the same module service also performs the
        // data access (key and datum are co-located) and the key
        // increment.
        memory.poke(key_addr, current + 1);
        Tick waited = eventq.now() - op.started;
        if (waited > 0)
            PSYNC_TRACE(tracer,
                        waitEdge(key, op.who, op.started,
                                 eventq.now()));
        trackWaitEnd(key);
        WaitHandler on_done = std::move(op.onWait);
        freeOp(slot);
        wakeKeyed(key);
        on_done(waited);
        return;
    }
    op.parkSeq = nextParkSeq++;
    trackPark(op.who);
    parkedKeyed[key].push_back(slot);
}

void
MemorySyncFabric::wakeKeyed(SyncVarId key)
{
    auto it = parkedKeyed.find(key);
    if (it == parkedKeyed.end() || it->second.empty())
        return;
    std::vector<std::uint32_t> woken;
    woken.swap(it->second);
    std::sort(woken.begin(), woken.end(),
              [this](std::uint32_t a, std::uint32_t b) {
        return ops[a].parkSeq < ops[b].parkSeq;
    });
    for (std::uint32_t slot : woken) {
        ++keyedRetriesStat;
        trackUnpark(ops[slot].who);
        // The retry occupies the key's module but never the
        // interconnect: the synchronization processor is local.
        memory.serviceAtModule(
            addrOf(key), [this, slot]() { keyedService(slot); });
    }
}

void
MemorySyncFabric::keyedAccess(ProcId who, SyncVarId key,
                              SyncWord threshold,
                              WaitHandler on_done)
{
    ++keyedOpsStat;
    PSYNC_TRACE(tracer, syncVarOp(key, "keyed", who, eventq.now()));
    std::uint32_t slot = allocOp();
    OpState &op = ops[slot];
    op.who = who;
    op.var = key;
    op.threshold = threshold;
    op.started = eventq.now();
    op.onWait = std::move(on_done);
    trackWaitStart(key);
    // One interconnect transaction delivers the combined request
    // to the module; reuse the read path for its timing.
    memory.read(who, addrOf(key),
                [this, slot](SyncWord) { keyedService(slot); });
}

SyncWord
MemorySyncFabric::peek(SyncVarId var) const
{
    return memory.peek(addrOf(var));
}

void
MemorySyncFabric::poke(SyncVarId var, SyncWord value)
{
    memory.poke(addrOf(var), value);
}

void
MemorySyncFabric::dumpStats(std::ostream &os) const
{
    stats::dump(os, pollsStat);
    stats::dump(os, writesStat);
    stats::dump(os, rmwsStat);
    stats::dump(os, keyedOpsStat);
    stats::dump(os, keyedRetriesStat);
}

void
MemorySyncFabric::registerStats(stats::Group &group) const
{
    group.add(pollsStat);
    group.add(writesStat);
    group.add(rmwsStat);
    group.add(keyedOpsStat);
    group.add(keyedRetriesStat);
}

//
// RegisterSyncFabric
//

RegisterSyncFabric::RegisterSyncFabric(EventQueue &eq, Bus &sync_bus,
                                       unsigned capacity, bool coalesce,
                                       Tracer *trace)
    : eventq(eq),
      syncBus(sync_bus),
      capacity_(capacity),
      coalesceEnabled(coalesce),
      tracer(trace),
      broadcastsStat("syncfab.reg.broadcasts"),
      coalescedStat("syncfab.reg.coalesced_writes"),
      localReadsStat("syncfab.reg.local_reads"),
      wakeupsStat("syncfab.reg.wakeups")
{
}

SyncVarId
RegisterSyncFabric::allocate(unsigned count, SyncWord init_value)
{
    if (numVars + count > capacity_)
        fatal("register sync fabric out of registers: want %u more, "
              "have %u of %u", count, numVars, capacity_);
    SyncVarId first = numVars;
    values.resize(numVars + count, init_value);
    waiters.resize(numVars + count);
    numVars += count;
    return first;
}

void
RegisterSyncFabric::runReady()
{
    ReadyOp op = std::move(readyOps.front());
    readyOps.pop_front();
    switch (op.kind) {
      case ReadyOp::Kind::wake:
        op.onWait(op.waited);
        return;
      case ReadyOp::Kind::readValue:
        op.onValue(op.value);
        return;
      case ReadyOp::Kind::writeDone:
        op.onDone();
        return;
    }
}

void
RegisterSyncFabric::commit(SyncVarId var, SyncWord value)
{
    values[var] = value;
    auto &wait_list = waiters[var];
    std::vector<Waiter> still_waiting;
    still_waiting.reserve(wait_list.size());
    for (auto &w : wait_list) {
        if (values[var] >= w.threshold) {
            ++wakeupsStat;
            if (tracer) {
                auto it = activeWaiters.find(var);
                if (it != activeWaiters.end() && --it->second == 0)
                    activeWaiters.erase(it);
            }
            Tick waited = eventq.now() - w.started;
            if (waited > 0) {
                PSYNC_TRACE(tracer, waitEdge(var, w.who, w.started,
                                             eventq.now()));
            }
            ReadyOp ready;
            ready.kind = ReadyOp::Kind::wake;
            ready.waited = waited;
            ready.onWait = std::move(w.onDone);
            readyOps.push_back(std::move(ready));
            eventq.scheduleIn(0, [this]() { runReady(); });
        } else {
            still_waiting.push_back(std::move(w));
        }
    }
    wait_list.swap(still_waiting);
}

void
RegisterSyncFabric::waitGE(ProcId who, SyncVarId var, SyncWord threshold,
                           WaitHandler on_done)
{
    ++localReadsStat;
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u wait v%u >= %llu (local image %llu)", who,
                  var, static_cast<unsigned long long>(threshold),
                  static_cast<unsigned long long>(values[var]));
    PSYNC_TRACE(tracer, syncVarOp(var, "wait", who, eventq.now()));
    if (values[var] >= threshold) {
        ReadyOp ready;
        ready.kind = ReadyOp::Kind::wake;
        ready.waited = 0;
        ready.onWait = std::move(on_done);
        readyOps.push_back(std::move(ready));
        eventq.scheduleIn(0, [this]() { runReady(); });
        return;
    }
    if (tracer)
        ++activeWaiters[var];
    waiters[var].push_back(Waiter{who, threshold, eventq.now(),
                                  nextWaiterSeq++,
                                  std::move(on_done)});
}

void
RegisterSyncFabric::sampleTimeline(Tracer &t, Tick at) const
{
    for (const auto &entry : activeWaiters) {
        t.sample(SampleStream::syncVarWaiters, entry.first, at,
                 static_cast<double>(entry.second));
    }
}

void
RegisterSyncFabric::read(ProcId who, SyncVarId var, ValueHandler on_done)
{
    (void)who;
    ++localReadsStat;
    ReadyOp ready;
    ready.kind = ReadyOp::Kind::readValue;
    ready.value = values[var];
    ready.onValue = std::move(on_done);
    readyOps.push_back(std::move(ready));
    eventq.scheduleIn(0, [this]() { runReady(); });
}

void
RegisterSyncFabric::write(ProcId who, SyncVarId var, SyncWord value,
                          DoneHandler on_done)
{
    std::uint64_t key = (static_cast<std::uint64_t>(who) << 32) | var;
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u write v%u = %llu (register fabric)", who,
                  var, static_cast<unsigned long long>(value));
    PSYNC_TRACE(tracer, syncVarOp(var, "write", who, eventq.now()));
    auto it = pendingWrites.find(key);
    if (coalesceEnabled && it != pendingWrites.end() &&
        it->second.valid) {
        // A broadcast of this variable from this processor is still
        // waiting for the bus; the newer value covers the older one.
        it->second.value = value;
        ++coalescedStat;
        PSYNC_TRACE(tracer,
                    syncVarOp(var, "coalesced", who, eventq.now()));
    } else {
        auto &pw = pendingWrites[key];
        pw.value = value;
        pw.valid = true;
        // The value is latched at grant time: once the write gains
        // the bus it can no longer be covered by a newer write
        // (section 6), so the pending entry closes then. The map
        // entry outlives the transaction, so the latch lives there.
        syncBus.transact(
            who,
            [this, key](Tick) {
                auto &entry = pendingWrites[key];
                entry.latched = entry.value;
                entry.valid = false;
            },
            [this, who, var, key](Tick) {
                ++broadcastsStat;
                PSYNC_TRACE(tracer, instant("sync_broadcast", who,
                                            eventq.now()));
                PSYNC_TRACE(tracer, syncVarOp(var, "broadcast", who,
                                              eventq.now()));
                commit(var, pendingWrites[key].latched);
            });
    }
    // Posted write: the issuing processor continues immediately.
    ReadyOp ready;
    ready.kind = ReadyOp::Kind::writeDone;
    ready.onDone = std::move(on_done);
    readyOps.push_back(std::move(ready));
    eventq.scheduleIn(0, [this]() { runReady(); });
}

void
RegisterSyncFabric::fetchInc(ProcId who, SyncVarId var,
                             ValueHandler on_done)
{
    // Atomicity comes from bus serialization: the increment is
    // applied at broadcast time, and no value is returned until
    // this processor's turn on the bus. The bus grants FIFO, so
    // completions pop the pending handlers in push order.
    PSYNC_TRACE(tracer, syncVarOp(var, "rmw", who, eventq.now()));
    pendingIncs.push_back(std::move(on_done));
    syncBus.transact(who, [this, who, var](Tick) {
        ValueHandler handler = std::move(pendingIncs.front());
        pendingIncs.pop_front();
        SyncWord old_value = values[var];
        ++broadcastsStat;
        PSYNC_TRACE(tracer,
                    instant("sync_broadcast", who, eventq.now()));
        commit(var, old_value + 1);
        handler(old_value);
    });
}

SyncWord
RegisterSyncFabric::peek(SyncVarId var) const
{
    return values[var];
}

void
RegisterSyncFabric::poke(SyncVarId var, SyncWord value)
{
    values[var] = value;
}

void
RegisterSyncFabric::dumpStats(std::ostream &os) const
{
    stats::dump(os, broadcastsStat);
    stats::dump(os, coalescedStat);
    stats::dump(os, localReadsStat);
    stats::dump(os, wakeupsStat);
}

void
RegisterSyncFabric::registerStats(stats::Group &group) const
{
    group.add(broadcastsStat);
    group.add(coalescedStat);
    group.add(localReadsStat);
    group.add(wakeupsStat);
}

} // namespace sim
} // namespace psync
