#include "sim/sync_fabric.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

const char *
fabricKindName(FabricKind kind)
{
    switch (kind) {
      case FabricKind::memory:
        return "memory";
      case FabricKind::registers:
        return "registers";
    }
    return "unknown";
}

//
// MemorySyncFabric
//

MemorySyncFabric::MemorySyncFabric(EventQueue &eq, Memory &mem, Addr base,
                                   Tick poll_interval, bool cached_spin,
                                   Tracer *trace)
    : eventq(eq),
      memory(mem),
      baseAddr(base),
      pollInterval(poll_interval),
      cachedSpin(cached_spin),
      tracer(trace),
      pollsStat("syncfab.mem.polls"),
      writesStat("syncfab.mem.writes"),
      rmwsStat("syncfab.mem.rmws"),
      keyedOpsStat("syncfab.mem.keyed_ops"),
      keyedRetriesStat("syncfab.mem.keyed_retries")
{
    if (pollInterval == 0)
        fatal("poll interval must be at least one cycle");
}

Addr
MemorySyncFabric::addrOf(SyncVarId var) const
{
    return baseAddr + static_cast<Addr>(var) * 8;
}

SyncVarId
MemorySyncFabric::allocate(unsigned count, SyncWord init_value)
{
    SyncVarId first = numVars;
    for (unsigned i = 0; i < count; ++i)
        memory.poke(addrOf(first + i), init_value);
    numVars += count;
    return first;
}

void
MemorySyncFabric::pollLoop(ProcId who, SyncVarId var, SyncWord threshold,
                           Tick started, WaitHandler on_done)
{
    ++pollsStat;
    PSYNC_TRACE(tracer, syncVarOp(var, "poll", who, eventq.now()));
    memory.read(who, addrOf(var),
                [this, who, var, threshold, started,
                 on_done = std::move(on_done)](SyncWord value) mutable {
        if (value >= threshold) {
            if (eventq.now() > started) {
                PSYNC_TRACE(tracer, waitEdge(var, who, started,
                                             eventq.now()));
            }
            on_done(eventq.now() - started);
            return;
        }
        if (cachedSpin) {
            // Spin on the (now cached) copy for free; the next
            // memory fetch happens when a write invalidates it.
            parked[var].push_back(Waiter{who, threshold, started,
                                         std::move(on_done)});
            return;
        }
        eventq.scheduleIn(pollInterval,
                          [this, who, var, threshold, started,
                           on_done = std::move(on_done)]() mutable {
            pollLoop(who, var, threshold, started, std::move(on_done));
        });
    });
}

void
MemorySyncFabric::invalidate(SyncVarId var)
{
    auto it = parked.find(var);
    if (it == parked.end() || it->second.empty())
        return;
    std::vector<Waiter> waiters;
    waiters.swap(it->second);
    // Every parked spinner re-fetches the invalidated word after
    // the poll interval (cache-miss turnaround); a hot word gets a
    // burst of refills queueing at its module.
    for (auto &w : waiters) {
        eventq.scheduleIn(pollInterval,
                          [this, var, w = std::move(w)]() mutable {
            pollLoop(w.who, var, w.threshold, w.started,
                     std::move(w.onDone));
        });
    }
}

void
MemorySyncFabric::waitGE(ProcId who, SyncVarId var, SyncWord threshold,
                         WaitHandler on_done)
{
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u wait v%u >= %llu (memory fabric)", who,
                  var, static_cast<unsigned long long>(threshold));
    PSYNC_TRACE(tracer, syncVarOp(var, "wait", who, eventq.now()));
    pollLoop(who, var, threshold, eventq.now(), std::move(on_done));
}

void
MemorySyncFabric::read(ProcId who, SyncVarId var, ValueHandler on_done)
{
    memory.read(who, addrOf(var), std::move(on_done));
}

void
MemorySyncFabric::write(ProcId who, SyncVarId var, SyncWord value,
                        DoneHandler on_done)
{
    ++writesStat;
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u write v%u = %llu (memory fabric)", who,
                  var, static_cast<unsigned long long>(value));
    PSYNC_TRACE(tracer, syncVarOp(var, "write", who, eventq.now()));
    memory.write(who, addrOf(var), value,
                 [this, var, on_done = std::move(on_done)]() {
        invalidate(var);
        on_done();
    });
}

void
MemorySyncFabric::fetchInc(ProcId who, SyncVarId var,
                           ValueHandler on_done)
{
    ++rmwsStat;
    PSYNC_TRACE(tracer, syncVarOp(var, "rmw", who, eventq.now()));
    memory.rmw(who, addrOf(var),
               [](SyncWord old_value) { return old_value + 1; },
               [this, var,
                on_done = std::move(on_done)](SyncWord old_value) {
        invalidate(var);
        on_done(old_value);
    });
}

void
MemorySyncFabric::keyedService(ProcId who, SyncVarId key,
                               SyncWord threshold, Tick started,
                               WaitHandler on_done)
{
    Addr key_addr = addrOf(key);
    SyncWord current = memory.peek(key_addr);
    if (current >= threshold) {
        // Test passed: the same module service also performs the
        // data access (key and datum are co-located) and the key
        // increment.
        memory.poke(key_addr, current + 1);
        Tick waited = eventq.now() - started;
        if (waited > 0)
            PSYNC_TRACE(tracer,
                        waitEdge(key, who, started, eventq.now()));
        wakeKeyed(key);
        on_done(waited);
        return;
    }
    parkedKeyed[key].push_back(
        Waiter{who, threshold, started, std::move(on_done)});
}

void
MemorySyncFabric::wakeKeyed(SyncVarId key)
{
    auto it = parkedKeyed.find(key);
    if (it == parkedKeyed.end() || it->second.empty())
        return;
    std::vector<Waiter> waiters;
    waiters.swap(it->second);
    for (auto &w : waiters) {
        ++keyedRetriesStat;
        // The retry occupies the key's module but never the
        // interconnect: the synchronization processor is local.
        memory.serviceAtModule(
            addrOf(key), [this, key, w = std::move(w)]() mutable {
            keyedService(w.who, key, w.threshold, w.started,
                         std::move(w.onDone));
        });
    }
}

void
MemorySyncFabric::keyedAccess(ProcId who, SyncVarId key,
                              SyncWord threshold,
                              WaitHandler on_done)
{
    ++keyedOpsStat;
    PSYNC_TRACE(tracer, syncVarOp(key, "keyed", who, eventq.now()));
    Tick started = eventq.now();
    // One interconnect transaction delivers the combined request
    // to the module; reuse the read path for its timing.
    memory.read(who, addrOf(key),
                [this, who, key, threshold, started,
                 on_done = std::move(on_done)](SyncWord) mutable {
        keyedService(who, key, threshold, started,
                     std::move(on_done));
    });
}

SyncWord
MemorySyncFabric::peek(SyncVarId var) const
{
    return memory.peek(addrOf(var));
}

void
MemorySyncFabric::poke(SyncVarId var, SyncWord value)
{
    memory.poke(addrOf(var), value);
}

void
MemorySyncFabric::dumpStats(std::ostream &os) const
{
    stats::dump(os, pollsStat);
    stats::dump(os, writesStat);
    stats::dump(os, rmwsStat);
    stats::dump(os, keyedOpsStat);
    stats::dump(os, keyedRetriesStat);
}

void
MemorySyncFabric::registerStats(stats::Group &group) const
{
    group.add(pollsStat);
    group.add(writesStat);
    group.add(rmwsStat);
    group.add(keyedOpsStat);
    group.add(keyedRetriesStat);
}

//
// RegisterSyncFabric
//

RegisterSyncFabric::RegisterSyncFabric(EventQueue &eq, Bus &sync_bus,
                                       unsigned capacity, bool coalesce,
                                       Tracer *trace)
    : eventq(eq),
      syncBus(sync_bus),
      capacity_(capacity),
      coalesceEnabled(coalesce),
      tracer(trace),
      broadcastsStat("syncfab.reg.broadcasts"),
      coalescedStat("syncfab.reg.coalesced_writes"),
      localReadsStat("syncfab.reg.local_reads"),
      wakeupsStat("syncfab.reg.wakeups")
{
}

SyncVarId
RegisterSyncFabric::allocate(unsigned count, SyncWord init_value)
{
    if (numVars + count > capacity_)
        fatal("register sync fabric out of registers: want %u more, "
              "have %u of %u", count, numVars, capacity_);
    SyncVarId first = numVars;
    values.resize(numVars + count, init_value);
    waiters.resize(numVars + count);
    numVars += count;
    return first;
}

void
RegisterSyncFabric::commit(SyncVarId var, SyncWord value)
{
    values[var] = value;
    auto &wait_list = waiters[var];
    std::vector<Waiter> still_waiting;
    still_waiting.reserve(wait_list.size());
    for (auto &w : wait_list) {
        if (values[var] >= w.threshold) {
            ++wakeupsStat;
            Tick waited = eventq.now() - w.started;
            if (waited > 0) {
                PSYNC_TRACE(tracer, waitEdge(var, w.who, w.started,
                                             eventq.now()));
            }
            eventq.scheduleIn(0, [on_done = std::move(w.onDone),
                                  waited]() { on_done(waited); });
        } else {
            still_waiting.push_back(std::move(w));
        }
    }
    wait_list.swap(still_waiting);
}

void
RegisterSyncFabric::waitGE(ProcId who, SyncVarId var, SyncWord threshold,
                           WaitHandler on_done)
{
    ++localReadsStat;
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u wait v%u >= %llu (local image %llu)", who,
                  var, static_cast<unsigned long long>(threshold),
                  static_cast<unsigned long long>(values[var]));
    PSYNC_TRACE(tracer, syncVarOp(var, "wait", who, eventq.now()));
    if (values[var] >= threshold) {
        eventq.scheduleIn(0, [on_done = std::move(on_done)]() {
            on_done(0);
        });
        return;
    }
    waiters[var].push_back(
        Waiter{who, threshold, eventq.now(), std::move(on_done)});
}

void
RegisterSyncFabric::read(ProcId who, SyncVarId var, ValueHandler on_done)
{
    (void)who;
    ++localReadsStat;
    SyncWord value = values[var];
    eventq.scheduleIn(0, [on_done = std::move(on_done), value]() {
        on_done(value);
    });
}

void
RegisterSyncFabric::write(ProcId who, SyncVarId var, SyncWord value,
                          DoneHandler on_done)
{
    std::uint64_t key = (static_cast<std::uint64_t>(who) << 32) | var;
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u write v%u = %llu (register fabric)", who,
                  var, static_cast<unsigned long long>(value));
    PSYNC_TRACE(tracer, syncVarOp(var, "write", who, eventq.now()));
    auto it = pendingWrites.find(key);
    if (coalesceEnabled && it != pendingWrites.end() &&
        it->second.valid) {
        // A broadcast of this variable from this processor is still
        // waiting for the bus; the newer value covers the older one.
        it->second.value = value;
        ++coalescedStat;
        PSYNC_TRACE(tracer,
                    syncVarOp(var, "coalesced", who, eventq.now()));
    } else {
        auto &pw = pendingWrites[key];
        pw.value = value;
        pw.valid = true;
        // The value is latched at grant time: once the write gains
        // the bus it can no longer be covered by a newer write
        // (section 6), so the pending entry closes then.
        auto latched = std::make_shared<SyncWord>(0);
        syncBus.transact(
            who,
            [this, key, latched](Tick) {
                auto &entry = pendingWrites[key];
                *latched = entry.value;
                entry.valid = false;
            },
            [this, who, var, latched](Tick) {
                ++broadcastsStat;
                PSYNC_TRACE(tracer, instant("sync_broadcast", who,
                                            eventq.now()));
                PSYNC_TRACE(tracer, syncVarOp(var, "broadcast", who,
                                              eventq.now()));
                commit(var, *latched);
            });
    }
    // Posted write: the issuing processor continues immediately.
    eventq.scheduleIn(0, [on_done = std::move(on_done)]() { on_done(); });
}

void
RegisterSyncFabric::fetchInc(ProcId who, SyncVarId var,
                             ValueHandler on_done)
{
    // Atomicity comes from bus serialization: the increment is
    // applied at broadcast time, and no value is returned until
    // this processor's turn on the bus.
    PSYNC_TRACE(tracer, syncVarOp(var, "rmw", who, eventq.now()));
    syncBus.transact(who, [this, who, var,
                           on_done = std::move(on_done)](Tick) {
        SyncWord old_value = values[var];
        ++broadcastsStat;
        PSYNC_TRACE(tracer,
                    instant("sync_broadcast", who, eventq.now()));
        commit(var, old_value + 1);
        on_done(old_value);
    });
}

SyncWord
RegisterSyncFabric::peek(SyncVarId var) const
{
    return values[var];
}

void
RegisterSyncFabric::poke(SyncVarId var, SyncWord value)
{
    values[var] = value;
}

void
RegisterSyncFabric::dumpStats(std::ostream &os) const
{
    stats::dump(os, broadcastsStat);
    stats::dump(os, coalescedStat);
    stats::dump(os, localReadsStat);
    stats::dump(os, wakeupsStat);
}

void
RegisterSyncFabric::registerStats(stats::Group &group) const
{
    group.add(broadcastsStat);
    group.add(coalescedStat);
    group.add(localReadsStat);
    group.add(wakeupsStat);
}

} // namespace sim
} // namespace psync
