#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

const char *
eventCoreKindName(EventCoreKind kind)
{
    switch (kind) {
      case EventCoreKind::calendar:
        return "calendar";
      case EventCoreKind::heap:
        return "heap";
    }
    return "unknown";
}

std::size_t
EventQueue::occupiedBuckets() const
{
    std::size_t buckets = 0;
    for (std::uint64_t word : occupied_) {
        while (word) {
            word &= word - 1;
            ++buckets;
        }
    }
    return buckets;
}

void
EventQueue::pushFar(Event event)
{
    far_.push_back(std::move(event));
    std::push_heap(far_.begin(), far_.end(),
                   [](const Event &a, const Event &b) {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    });
}

EventQueue::Event
EventQueue::popFar()
{
    std::pop_heap(far_.begin(), far_.end(),
                  [](const Event &a, const Event &b) {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    });
    Event event = std::move(far_.back());
    far_.pop_back();
    return event;
}

void
EventQueue::schedule(Tick when, Handler handler)
{
    if (when < curTick_)
        panic("scheduling event in the past: %llu < %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    if (handler.onHeap())
        ++heapFallbacks_;
    Event event{when, nextSeq_++, std::move(handler)};
    if (core_ == EventCoreKind::heap ||
        when - curTick_ >= ringSize) {
        pushFar(std::move(event));
        return;
    }
    auto &bucket = ring_[when & ringMask];
    bucket.push_back(std::move(event));
    occupied_[(when & ringMask) / 64] |=
        std::uint64_t{1} << ((when & ringMask) % 64);
    ++ringCount_;
}

void
EventQueue::migrateFar()
{
    while (!far_.empty() &&
           far_.front().when - curTick_ < ringSize) {
        Event event = popFar();
        auto &bucket = ring_[event.when & ringMask];
        std::uint64_t idx = event.when & ringMask;
        bucket.push_back(std::move(event));
        occupied_[idx / 64] |= std::uint64_t{1} << (idx % 64);
        ++ringCount_;
        // A migrated event was scheduled while its tick was outside
        // the window, so its seq precedes any event the window
        // already holds for the same tick; restore seq order.
        if (bucket.size() > 1 &&
            bucket[bucket.size() - 2].seq > bucket.back().seq) {
            std::sort(bucket.begin(), bucket.end(),
                      [](const Event &a, const Event &b) {
                return a.seq < b.seq;
            });
        }
    }
}

void
EventQueue::drainBucket(Tick tick)
{
    std::uint64_t idx = tick & ringMask;
    auto &bucket = ring_[idx];
    // Handlers may append same-tick events to this bucket while it
    // drains; indexed iteration with a size recheck picks them up,
    // and they arrive in seq order by construction.
    for (std::size_t i = 0; i < bucket.size(); ++i) {
        Handler handler = std::move(bucket[i].handler);
        curTick_ = tick;
        ++executed_;
        handler();
    }
    ringCount_ -= bucket.size();
    bucket.clear();
    occupied_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
}

Tick
EventQueue::nextRingTick() const
{
    if (ringCount_ == 0)
        return maxTick;
    // Scan the occupancy bitmap circularly from curTick_'s bucket;
    // the window invariant (every ring event is within ringSize of
    // curTick_) makes the first occupied bucket the earliest tick.
    std::uint64_t base = curTick_ & ringMask;
    for (std::uint64_t step = 0; step < occupied_.size() + 1;
         ++step) {
        std::uint64_t word_idx =
            ((base / 64) + step) % occupied_.size();
        std::uint64_t word = occupied_[word_idx];
        if (step == 0) {
            // Mask off buckets before base in the first word.
            word &= ~std::uint64_t{0} << (base % 64);
        } else if (step == occupied_.size()) {
            // Wrapped back to the first word: only buckets before
            // base remain.
            word = occupied_[word_idx] &
                   ~(~std::uint64_t{0} << (base % 64));
        }
        if (word == 0)
            continue;
        std::uint64_t bit = word & (~word + 1);
        unsigned bit_idx = 0;
        while ((bit >> bit_idx) != 1)
            ++bit_idx;
        std::uint64_t bucket_idx = word_idx * 64 + bit_idx;
        return ring_[bucket_idx].front().when;
    }
    panic("ring count %zu but no occupied bucket", ringCount_);
    return maxTick;
}

bool
EventQueue::runCalendar(Tick limit)
{
    for (;;) {
        Tick ring_next = nextRingTick();
        Tick far_next = far_.empty() ? maxTick : far_.front().when;
        Tick next = std::min(ring_next, far_next);
        if (next == maxTick)
            return true;
        if (next > limit) {
            curTick_ = limit;
            return false;
        }
        curTick_ = next;
        if (far_next != maxTick)
            migrateFar();
        drainBucket(next);
    }
}

bool
EventQueue::runHeap(Tick limit)
{
    while (!far_.empty()) {
        if (far_.front().when > limit) {
            curTick_ = limit;
            return false;
        }
        Event event = popFar();
        curTick_ = event.when;
        ++executed_;
        event.handler();
    }
    return true;
}

bool
EventQueue::run(Tick limit)
{
    return core_ == EventCoreKind::calendar ? runCalendar(limit)
                                            : runHeap(limit);
}

void
EventQueue::clear()
{
    for (auto &bucket : ring_)
        bucket.clear();
    occupied_.fill(0);
    ringCount_ = 0;
    far_.clear();
}

} // namespace sim
} // namespace psync
