#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

void
EventQueue::schedule(Tick when, Handler handler)
{
    if (when < curTick_)
        panic("scheduling event in the past: %llu < %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    events_.push(Event{when, nextSeq_++, std::move(handler)});
}

bool
EventQueue::run(Tick limit)
{
    while (!events_.empty()) {
        const Event &top = events_.top();
        if (top.when > limit) {
            curTick_ = limit;
            return false;
        }
        // Move the handler out before popping; the handler may
        // schedule new events.
        Tick when = top.when;
        Handler handler = std::move(const_cast<Event &>(top).handler);
        events_.pop();
        curTick_ = when;
        ++executed_;
        handler();
    }
    return true;
}

} // namespace sim
} // namespace psync
