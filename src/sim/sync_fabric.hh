/**
 * @file
 * Synchronization-variable fabrics.
 *
 * The paper's section 6 argues that process counters can live either
 * in the coherent shared memory (where busy-wait polling consumes
 * data-bus and memory-module bandwidth) or in dedicated
 * synchronization registers with per-processor local images updated
 * over a broadcast synchronization bus (the Alliant FX/8
 * concurrency-control-bus style), where polling is local and free
 * and only updates are broadcast — with write coalescing collapsing
 * back-to-back updates to the same variable before they win bus
 * arbitration.
 *
 * Both organizations are modeled behind one interface so every
 * scheme can run on either fabric.
 */

#ifndef PSYNC_SIM_SYNC_FABRIC_HH
#define PSYNC_SIM_SYNC_FABRIC_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/bus.hh"
#include "sim/event_queue.hh"
#include "sim/memory.hh"
#include "sim/stats.hh"
#include "sim/tracing.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** Where synchronization variables physically live. */
enum class FabricKind
{
    /** Variables in shared memory; polls are memory transactions. */
    memory,
    /** Dedicated registers with broadcast local images. */
    registers,
    /**
     * Variables in memory modules behind a combining omega network
     * that merges matching fetch&add (and poll) packets at switch
     * nodes — the NYU Ultracomputer hot-spot fix. See
     * CombiningSyncFabric (sim/combining_fabric.hh).
     */
    combining,
    /**
     * Two-level cluster fabric: per-cluster register images on
     * local buses plus a global serialization stage, SynCron-style.
     * See HierarchicalSyncFabric (sim/cluster_fabric.hh).
     */
    hierarchical,
};

/** Convert a fabric kind to a short printable name. */
const char *fabricKindName(FabricKind kind);

/**
 * Abstract home of synchronization variables.
 *
 * All runtime operations are asynchronous: completion is delivered
 * through callbacks scheduled on the event queue, and busy-waiting
 * is reported as the number of cycles between the start of a wait
 * and its satisfaction so the processor model can account spin time.
 */
class SyncFabric
{
  public:
    using WaitHandler = InlineFunction<void(Tick waited_cycles)>;
    using DoneHandler = InlineFunction<void()>;
    using ValueHandler = InlineFunction<void(SyncWord value)>;

    virtual ~SyncFabric() = default;

    /** Fabric flavor, for reporting. */
    virtual FabricKind kind() const = 0;

    /**
     * Allocate `count` variables initialized to `init_value`.
     * Setup-time operation; the *simulated* cost of initialization
     * is modeled by the schemes (it is one of the paper's axes).
     * @return the id of the first variable of the block.
     */
    virtual SyncVarId allocate(unsigned count, SyncWord init_value) = 0;

    /** Number of variables allocated so far. */
    virtual unsigned allocated() const = 0;

    /**
     * Spin until value(var) >= threshold. PC words compare with
     * their packed lexicographic order (see PcWord); plain counters
     * compare numerically — both are the same u64 comparison.
     */
    virtual void waitGE(ProcId who, SyncVarId var, SyncWord threshold,
                        WaitHandler on_done) = 0;

    /** Read the current value (local image where one exists). */
    virtual void read(ProcId who, SyncVarId var,
                      ValueHandler on_done) = 0;

    /**
     * Update a variable. On the register fabric the write is
     * *posted*: the issuing processor continues after `issueCost`
     * cycles while the broadcast proceeds asynchronously. On the
     * memory fabric the writer blocks until the word is globally
     * visible, per correctness requirement (1) of section 2.2.
     */
    virtual void write(ProcId who, SyncVarId var, SyncWord value,
                       DoneHandler on_done) = 0;

    /** Atomic increment, returning the pre-increment value. */
    virtual void fetchInc(ProcId who, SyncVarId var,
                          ValueHandler on_done) = 0;

    /** Instantaneous, non-simulated value inspection (tests). */
    virtual SyncWord peek(SyncVarId var) const = 0;

    /** Instantaneous, non-simulated value override (setup). */
    virtual void poke(SyncVarId var, SyncWord value) = 0;

    /** Processor-side cycles to issue one fabric operation. */
    virtual Tick issueCost() const = 0;

    /**
     * Emit per-variable timeline samples (blocked-waiter counts) to
     * `t` at tick `at`. Only variables with at least one blocked
     * waiter are reported, so a missing sample means zero. Default
     * reports nothing.
     */
    virtual void
    sampleTimeline(Tracer &t, Tick at) const
    {
        (void)t; (void)at;
    }

    /**
     * True if `who` is blocked on a parked (non-polling) wait right
     * now — a cached-spin waiter waiting for an invalidation, or a
     * keyed request parked at its module. Register-fabric waiters
     * spin on free local images and are never parked. Maintained
     * only while a tracer is attached (timeline sampling).
     */
    virtual bool
    isParked(ProcId who) const
    {
        (void)who;
        return false;
    }

    virtual void dumpStats(std::ostream &os) const = 0;

    /** Register the fabric's statistics with a walker group. */
    virtual void registerStats(stats::Group &group) const = 0;
};

/**
 * Synchronization variables held in shared memory words.
 *
 * Every poll of a busy-wait loop is a full data-bus + memory-module
 * round trip, repeated every `pollIntervalCycles`. This is the
 * organization the paper attributes to data-oriented schemes (keys
 * stored with their data) and to software-only implementations.
 */
class MemorySyncFabric : public SyncFabric
{
  public:
    /**
     * @param eq     event queue
     * @param mem    backing memory (shared with data accesses)
     * @param base   first byte address used for sync words
     * @param poll_interval cycles between successive spin polls
     * @param cached_spin spin on a coherent cache copy: after a
     *        failed poll the waiter parks and re-fetches only when
     *        the word is written (invalidation), instead of
     *        re-polling memory every interval. Models
     *        test&test&set-style spinning; the re-fetch burst when
     *        a hot word is released still queues at its module.
     */
    MemorySyncFabric(EventQueue &eq, Memory &mem, Addr base,
                     Tick poll_interval, bool cached_spin = true,
                     Tracer *tracer = nullptr);

    FabricKind kind() const override { return FabricKind::memory; }

    SyncVarId allocate(unsigned count, SyncWord init_value) override;
    unsigned allocated() const override { return numVars; }

    void waitGE(ProcId who, SyncVarId var, SyncWord threshold,
                WaitHandler on_done) override;
    void read(ProcId who, SyncVarId var, ValueHandler on_done) override;
    void write(ProcId who, SyncVarId var, SyncWord value,
               DoneHandler on_done) override;
    void fetchInc(ProcId who, SyncVarId var,
                  ValueHandler on_done) override;

    SyncWord peek(SyncVarId var) const override;
    void poke(SyncVarId var, SyncWord value) override;

    Tick issueCost() const override { return 1; }

    /** Total spin polls issued to memory. */
    std::uint64_t polls() const
    {
        return static_cast<std::uint64_t>(pollsStat.value());
    }

    /**
     * Cedar-style combined keyed access (the "synchronization
     * processor in each global memory module" of [26], section
     * 3.1): one interconnect transaction carries the key test, the
     * data access and the key increment to the module where key
     * and datum both live. If key < threshold the request parks
     * *at the module* — no retry traffic — and is re-serviced
     * (module-locally) whenever the key changes.
     */
    void keyedAccess(ProcId who, SyncVarId key, SyncWord threshold,
                     WaitHandler on_done);

    /** Combined keyed accesses serviced. */
    std::uint64_t keyedOps() const
    {
        return static_cast<std::uint64_t>(keyedOpsStat.value());
    }

    /** Module-local retries of parked keyed requests. */
    std::uint64_t keyedRetries() const
    {
        return static_cast<std::uint64_t>(keyedRetriesStat.value());
    }

    void sampleTimeline(Tracer &t, Tick at) const override;
    bool isParked(ProcId who) const override;

    void dumpStats(std::ostream &os) const override;
    void registerStats(stats::Group &group) const override;

  private:
    /**
     * One in-flight fabric operation (spin wait, keyed access,
     * write or fetch&inc completion), parked in a free-listed slab
     * so every event and memory callback captures only {this, slot}
     * — the user's completion handler rests here, never nested
     * inside another closure.
     */
    struct OpState
    {
        ProcId who = 0;
        SyncVarId var = 0;
        SyncWord threshold = 0;
        Tick started = 0;
        /** FIFO ordering among waiters parked on the same var. */
        std::uint64_t parkSeq = 0;
        WaitHandler onWait;
        DoneHandler onDone;
        ValueHandler onValue;
        std::uint32_t next = noOp;
    };

    static constexpr std::uint32_t noOp = ~0u;

    std::uint32_t allocOp();
    void freeOp(std::uint32_t slot);

    Addr addrOf(SyncVarId var) const;
    /** Issue the next memory poll of the wait parked in `slot`. */
    void pollLoop(std::uint32_t slot);
    /** A poll returned `value`; satisfy, park or re-poll. */
    void pollValue(std::uint32_t slot, SyncWord value);
    /** Wake parked cached-spin waiters of `var` to re-fetch. */
    void invalidate(SyncVarId var);
    /** Module-side key test + access + increment. */
    void keyedService(std::uint32_t slot);
    /** Re-test keyed requests parked on `key`. */
    void wakeKeyed(SyncVarId key);
    void writeDone(std::uint32_t slot);
    void fetchIncDone(std::uint32_t slot, SyncWord old_value);

    EventQueue &eventq;
    Memory &memory;
    Addr baseAddr;
    Tick pollInterval;
    bool cachedSpin;
    Tracer *tracer;
    unsigned numVars = 0;

    std::vector<OpState> ops;
    std::uint32_t freeOps = noOp;
    std::uint64_t nextParkSeq = 0;

    /** Count a wait (poll loop or keyed) becoming blocked on var. */
    void trackWaitStart(SyncVarId var);
    /** A blocked wait on `var` was satisfied. */
    void trackWaitEnd(SyncVarId var);
    /** `who` parked (cached-spin or keyed) / resumed polling. */
    void trackPark(ProcId who);
    void trackUnpark(ProcId who);

    /** Parked waiter slots per variable, FIFO by parkSeq. */
    std::unordered_map<SyncVarId, std::vector<std::uint32_t>> parked;
    std::unordered_map<SyncVarId, std::vector<std::uint32_t>>
        parkedKeyed;

    /**
     * Timeline-sampling shadow state, maintained only while a
     * tracer is attached: blocked waiters per variable and the set
     * of processors currently parked (as opposed to polling).
     */
    std::unordered_map<SyncVarId, unsigned> activeWaiters;
    std::unordered_set<ProcId> parkedProcs;

    stats::Scalar pollsStat;
    stats::Scalar writesStat;
    stats::Scalar rmwsStat;
    stats::Scalar keyedOpsStat;
    stats::Scalar keyedRetriesStat;
};

/**
 * Dedicated synchronization registers with broadcast images.
 *
 * Reads and spin polls hit the processor-local image at no bus
 * cost. Writes arbitrate for the synchronization bus and are
 * broadcast to all images in one bus transaction. A write that is
 * still waiting for the bus when the same processor writes the same
 * variable again is overwritten in place (coalesced), because each
 * later write covers all previous ones — the optimization section 6
 * describes.
 */
class RegisterSyncFabric : public SyncFabric
{
  public:
    /**
     * @param eq        event queue
     * @param sync_bus  dedicated broadcast bus
     * @param capacity  number of hardware registers available
     * @param coalesce  enable pending-write coalescing
     */
    RegisterSyncFabric(EventQueue &eq, Bus &sync_bus, unsigned capacity,
                       bool coalesce = true, Tracer *tracer = nullptr);

    FabricKind kind() const override { return FabricKind::registers; }

    SyncVarId allocate(unsigned count, SyncWord init_value) override;
    unsigned allocated() const override { return numVars; }
    unsigned capacity() const { return capacity_; }

    void waitGE(ProcId who, SyncVarId var, SyncWord threshold,
                WaitHandler on_done) override;
    void read(ProcId who, SyncVarId var, ValueHandler on_done) override;
    void write(ProcId who, SyncVarId var, SyncWord value,
               DoneHandler on_done) override;
    void fetchInc(ProcId who, SyncVarId var,
                  ValueHandler on_done) override;

    SyncWord peek(SyncVarId var) const override;
    void poke(SyncVarId var, SyncWord value) override;

    Tick issueCost() const override { return 1; }

    /** Broadcast transactions that actually used the bus. */
    std::uint64_t broadcasts() const
    {
        return static_cast<std::uint64_t>(broadcastsStat.value());
    }

    /** Writes absorbed into a pending broadcast. */
    std::uint64_t coalescedWrites() const
    {
        return static_cast<std::uint64_t>(coalescedStat.value());
    }

    void sampleTimeline(Tracer &t, Tick at) const override;

    void dumpStats(std::ostream &os) const override;
    void registerStats(stats::Group &group) const override;

  private:
    struct Waiter
    {
        ProcId who;
        SyncWord threshold;
        Tick started;
        /** FIFO ordering among waiters of the same variable. */
        std::uint64_t seq;
        WaitHandler onDone;
    };

    struct PendingWrite
    {
        SyncWord value;
        /** Value captured when the broadcast won the bus. */
        SyncWord latched = 0;
        bool valid = false;
    };

    /**
     * A completion ready to run after the posted-op delay. Wake,
     * local-read and posted-write-done events all capture only
     * {this}; the fat handler waits here. The deque is FIFO and
     * every push pairs with one scheduled event, so pops line up
     * with event order deterministically.
     */
    struct ReadyOp
    {
        enum class Kind : std::uint8_t
        {
            wake,
            readValue,
            writeDone,
        };

        Kind kind = Kind::wake;
        Tick waited = 0;
        SyncWord value = 0;
        WaitHandler onWait;
        ValueHandler onValue;
        DoneHandler onDone;
    };

    void commit(SyncVarId var, SyncWord value);
    /** Run the oldest queued completion (one per scheduled event). */
    void runReady();

    EventQueue &eventq;
    Bus &syncBus;
    unsigned capacity_;
    bool coalesceEnabled;
    Tracer *tracer;
    unsigned numVars = 0;
    std::uint64_t nextWaiterSeq = 0;

    std::vector<SyncWord> values;
    std::vector<std::vector<Waiter>> waiters;
    /**
     * Blocked waiters per variable, maintained only while a tracer
     * is attached (timeline sampling): a sparse mirror of the
     * non-empty `waiters` lists, so a sample never scans the full
     * register file.
     */
    std::unordered_map<SyncVarId, unsigned> activeWaiters;
    /** Pending (not yet granted) write per (proc, var). */
    std::unordered_map<std::uint64_t, PendingWrite> pendingWrites;
    std::deque<ReadyOp> readyOps;
    /** Fetch&inc completions, FIFO — the bus grants in FIFO order. */
    std::deque<ValueHandler> pendingIncs;

    stats::Scalar broadcastsStat;
    stats::Scalar coalescedStat;
    stats::Scalar localReadsStat;
    stats::Scalar wakeupsStat;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_SYNC_FABRIC_HH
