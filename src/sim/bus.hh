/**
 * @file
 * A FIFO-arbitrated shared bus.
 *
 * Both the main data bus and the dedicated synchronization bus of
 * section 6 are instances of this model: requesters queue, each
 * granted transaction occupies the bus for a fixed number of
 * cycles, and occupancy/queue-delay statistics are collected so the
 * benches can report traffic the way the paper argues about it.
 */

#ifndef PSYNC_SIM_BUS_HH
#define PSYNC_SIM_BUS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/event_queue.hh"
#include "sim/interconnect.hh"
#include "sim/stats.hh"
#include "sim/tracing.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** A single shared bus with FIFO arbitration. */
class Bus : public Interconnect
{
  public:
    /**
     * @param eq            event queue driving the simulation
     * @param bus_name      name used in statistics output
     * @param cycles_per_txn bus occupancy of one transaction
     * @param tracer        optional event tracer (may be null)
     */
    Bus(EventQueue &eq, std::string bus_name, Tick cycles_per_txn,
        Tracer *tracer = nullptr);

    /**
     * Queue a transaction. `on_done` runs when the transaction has
     * finished driving the bus.
     */
    void transact(ProcId who, GrantHandler on_done) override;

    /**
     * Queue a transaction with a grant-time hook: `on_grant` runs
     * the moment the transaction wins arbitration and starts
     * driving the bus (used for write coalescing, which is only
     * legal before the bus is gained — section 6), `on_done` when
     * it finishes.
     */
    void transact(ProcId who, GrantHandler on_grant,
                  GrantHandler on_done) override;

    /** Cycles one transaction occupies the bus. */
    Tick cyclesPerTransaction() const { return cyclesPerTxn; }

    /** Number of completed transactions. */
    std::uint64_t transactions() const override
    {
        return static_cast<std::uint64_t>(numTransactions.value());
    }

    /** Total cycles the bus was busy. */
    Tick busyCycles() const
    {
        return static_cast<Tick>(busyCyclesStat.value());
    }

    /** Total cycles transactions spent waiting for a grant. */
    Tick queueDelay() const override
    {
        return static_cast<Tick>(queueDelayStat.value());
    }

    /** Largest queue depth observed. */
    std::uint64_t maxQueueDepth() const
    {
        return static_cast<std::uint64_t>(maxQueueStat.value());
    }

    /** Fraction of time busy over [0, end_tick]. */
    double utilization(Tick end_tick) const override;

    /**
     * Emit one timeline sample pair (cumulative busy cycles,
     * instantaneous queue depth) to `t`, tagged with this bus's
     * stream index (0 = data bus, 1 = sync bus).
     */
    void sampleTimeline(Tracer &t, std::uint32_t index, Tick at) const;

    /** Write the bus statistics to a stream. */
    void dumpStats(std::ostream &os) const override;

    /** Register this bus's statistics with a walker group. */
    void registerStats(stats::Group &group) const override;

    const std::string &name() const override { return name_; }

  private:
    struct Request
    {
        ProcId who;
        Tick issued;
        GrantHandler onGrant;
        GrantHandler onDone;
    };

    void grantNext();

    EventQueue &eventq;
    std::string name_;
    Tick cyclesPerTxn;
    Tracer *tracer;
    Tick freeAt = 0;
    bool granting = false;
    std::deque<Request> pending;
    /**
     * The granted transaction's completion callback. At most one
     * transaction drives the bus at a time (`granting`), so its
     * done event only needs to capture `this` — keeping the event
     * inside the queue's inline handler storage.
     */
    GrantHandler inflightDone;
    Tick inflightGrant = 0;

    stats::Scalar numTransactions;
    stats::Scalar busyCyclesStat;
    stats::Scalar queueDelayStat;
    stats::Gauge maxQueueStat;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_BUS_HH
