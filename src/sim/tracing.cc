#include "sim/tracing.hh"

namespace psync {
namespace sim {

Tracer::~Tracer() = default;

const char *
tracePhaseName(TracePhase phase)
{
    switch (phase) {
      case TracePhase::compute:
        return "compute";
      case TracePhase::spin:
        return "spin";
      case TracePhase::syncOverhead:
        return "sync";
      case TracePhase::stall:
        return "stall";
      case TracePhase::dispatch:
        return "dispatch";
    }
    return "unknown";
}

const char *
sampleStreamName(SampleStream stream)
{
    switch (stream) {
      case SampleStream::busBusyCycles:
        return "bus_busy_cycles";
      case SampleStream::busQueueDepth:
        return "bus_queue_depth";
      case SampleStream::moduleAccesses:
        return "module_accesses";
      case SampleStream::moduleBacklog:
        return "module_backlog";
      case SampleStream::syncVarWaiters:
        return "sync_var_waiters";
      case SampleStream::procActivity:
        return "proc_activity";
      case SampleStream::eventsExecuted:
        return "events_executed";
      case SampleStream::pendingEvents:
        return "pending_events";
      case SampleStream::ringBuckets:
        return "ring_buckets";
      case SampleStream::farHeapEvents:
        return "far_heap_events";
      case SampleStream::heapFallbacks:
        return "heap_fallbacks";
      case SampleStream::netStageConflictCycles:
        return "net_stage_conflict_cycles";
      case SampleStream::netStageCombines:
        return "net_stage_combines";
      case SampleStream::clusterBusBusyCycles:
        return "cluster_bus_busy_cycles";
    }
    return "unknown";
}

bool
sampleStreamCumulative(SampleStream stream)
{
    switch (stream) {
      case SampleStream::busBusyCycles:
      case SampleStream::moduleAccesses:
      case SampleStream::eventsExecuted:
      case SampleStream::heapFallbacks:
      case SampleStream::netStageConflictCycles:
      case SampleStream::netStageCombines:
      case SampleStream::clusterBusBusyCycles:
        return true;
      default:
        return false;
    }
}

bool
sampleStreamIndexed(SampleStream stream)
{
    switch (stream) {
      case SampleStream::busBusyCycles:
      case SampleStream::busQueueDepth:
      case SampleStream::moduleAccesses:
      case SampleStream::moduleBacklog:
      case SampleStream::syncVarWaiters:
      case SampleStream::procActivity:
      case SampleStream::netStageConflictCycles:
      case SampleStream::netStageCombines:
      case SampleStream::clusterBusBusyCycles:
        return true;
      default:
        return false;
    }
}

const char *
procActivityName(ProcActivity activity)
{
    switch (activity) {
      case ProcActivity::dispatch:
        return "dispatch";
      case ProcActivity::compute:
        return "compute";
      case ProcActivity::stall:
        return "stall";
      case ProcActivity::sync:
        return "sync";
      case ProcActivity::spin:
        return "spin";
      case ProcActivity::parked:
        return "parked";
      case ProcActivity::halted:
        return "halted";
    }
    return "unknown";
}

} // namespace sim
} // namespace psync
