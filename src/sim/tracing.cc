#include "sim/tracing.hh"

namespace psync {
namespace sim {

Tracer::~Tracer() = default;

const char *
tracePhaseName(TracePhase phase)
{
    switch (phase) {
      case TracePhase::compute:
        return "compute";
      case TracePhase::spin:
        return "spin";
      case TracePhase::syncOverhead:
        return "sync";
      case TracePhase::stall:
        return "stall";
      case TracePhase::dispatch:
        return "dispatch";
    }
    return "unknown";
}

} // namespace sim
} // namespace psync
