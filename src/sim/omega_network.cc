#include "sim/omega_network.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

OmegaNetwork::OmegaNetwork(EventQueue &eq, std::string net_name,
                           unsigned num_ports, unsigned num_stages,
                           Tick stage_cycles, Tick port_cycles)
    : eventq(eq),
      name_(std::move(net_name)),
      numStages(num_stages),
      stageCycles(stage_cycles),
      portCycles(port_cycles),
      portFreeAt(num_ports, 0),
      numTransactions(name_ + ".transactions"),
      queueDelayStat(name_ + ".queue_delay"),
      busyCyclesStat(name_ + ".port_busy_cycles")
{
    if (num_ports == 0)
        fatal("omega network needs at least one port");
    if (num_stages == 0)
        fatal("omega network needs at least one stage");
}

void
OmegaNetwork::transact(ProcId who, GrantHandler on_done)
{
    transact(who, GrantHandler{}, std::move(on_done));
}

void
OmegaNetwork::transact(ProcId who, GrantHandler on_grant,
                       GrantHandler on_done)
{
    if (who >= portFreeAt.size())
        panic("port %u out of range", who);

    Tick now = eventq.now();
    Tick inject = std::max(now, portFreeAt[who]);
    portFreeAt[who] = inject + portCycles;

    ++numTransactions;
    queueDelayStat += static_cast<double>(inject - now);
    busyCyclesStat += static_cast<double>(portCycles);

    Tick delivered = inject + numStages * stageCycles;
    if (on_grant) {
        if (inject == now) {
            on_grant(inject);
        } else {
            std::uint32_t slot =
                parkFlight(std::move(on_grant), inject);
            eventq.schedule(inject,
                            [this, slot]() { fireFlight(slot); });
        }
    }
    std::uint32_t slot = parkFlight(std::move(on_done), inject);
    eventq.schedule(delivered, [this, slot]() { fireFlight(slot); });
}

std::uint32_t
OmegaNetwork::parkFlight(GrantHandler handler, Tick inject)
{
    std::uint32_t slot;
    if (freeFlight != noFlight) {
        slot = freeFlight;
        freeFlight = flights[slot].next;
    } else {
        slot = static_cast<std::uint32_t>(flights.size());
        flights.emplace_back();
    }
    flights[slot].handler = std::move(handler);
    flights[slot].inject = inject;
    return slot;
}

void
OmegaNetwork::fireFlight(std::uint32_t slot)
{
    GrantHandler handler = std::move(flights[slot].handler);
    Tick inject = flights[slot].inject;
    flights[slot].next = freeFlight;
    freeFlight = slot;
    handler(inject);
}

double
OmegaNetwork::utilization(Tick end_tick) const
{
    if (end_tick == 0 || portFreeAt.empty())
        return 0.0;
    double capacity =
        static_cast<double>(end_tick) * portFreeAt.size();
    return busyCyclesStat.value() / capacity;
}

void
OmegaNetwork::dumpStats(std::ostream &os) const
{
    stats::dump(os, numTransactions);
    stats::dump(os, queueDelayStat);
    stats::dump(os, busyCyclesStat);
}

void
OmegaNetwork::registerStats(stats::Group &group) const
{
    group.add(numTransactions);
    group.add(queueDelayStat);
    group.add(busyCyclesStat);
}

} // namespace sim
} // namespace psync
