#include "sim/omega_network.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

OmegaNetwork::OmegaNetwork(EventQueue &eq, std::string net_name,
                           unsigned num_ports, unsigned num_stages,
                           Tick stage_cycles, Tick port_cycles)
    : eventq(eq),
      name_(std::move(net_name)),
      numStages(num_stages),
      stageCycles(stage_cycles),
      portCycles(port_cycles),
      portFreeAt(num_ports, 0),
      numTransactions(name_ + ".transactions"),
      queueDelayStat(name_ + ".queue_delay"),
      busyCyclesStat(name_ + ".port_busy_cycles")
{
    if (num_ports == 0)
        fatal("omega network needs at least one port");
    if (num_stages == 0)
        fatal("omega network needs at least one stage");
}

void
OmegaNetwork::transact(ProcId who, GrantHandler on_done)
{
    transact(who, GrantHandler{}, std::move(on_done));
}

void
OmegaNetwork::transact(ProcId who, GrantHandler on_grant,
                       GrantHandler on_done)
{
    if (who >= portFreeAt.size())
        panic("port %u out of range", who);

    Tick now = eventq.now();
    Tick inject = std::max(now, portFreeAt[who]);
    portFreeAt[who] = inject + portCycles;

    ++numTransactions;
    queueDelayStat += static_cast<double>(inject - now);
    busyCyclesStat += static_cast<double>(portCycles);

    Tick delivered = inject + numStages * stageCycles;
    if (on_grant) {
        if (inject == now) {
            on_grant(inject);
        } else {
            std::uint32_t slot =
                parkFlight(std::move(on_grant), inject);
            eventq.schedule(inject,
                            [this, slot]() { fireFlight(slot); });
        }
    }
    std::uint32_t slot = parkFlight(std::move(on_done), inject);
    eventq.schedule(delivered, [this, slot]() { fireFlight(slot); });
}

std::uint32_t
OmegaNetwork::parkFlight(GrantHandler handler, Tick inject)
{
    std::uint32_t slot;
    if (freeFlight != noFlight) {
        slot = freeFlight;
        freeFlight = flights[slot].next;
    } else {
        slot = static_cast<std::uint32_t>(flights.size());
        flights.emplace_back();
    }
    flights[slot].handler = std::move(handler);
    flights[slot].inject = inject;
    return slot;
}

void
OmegaNetwork::fireFlight(std::uint32_t slot)
{
    GrantHandler handler = std::move(flights[slot].handler);
    Tick inject = flights[slot].inject;
    flights[slot].next = freeFlight;
    freeFlight = slot;
    handler(inject);
}

CombiningOmegaNetwork::CombiningOmegaNetwork(std::string net_name,
                                             unsigned num_ports,
                                             unsigned num_endpoints,
                                             Tick stage_cycles,
                                             Tick port_cycles)
    : name_(std::move(net_name)),
      stageCycles(stage_cycles),
      portCycles(port_cycles),
      portFreeAt(num_ports, 0),
      numTransactions(name_ + ".transactions"),
      queueDelayStat(name_ + ".queue_delay"),
      portBusyStat(name_ + ".port_busy_cycles")
{
    if (num_ports == 0)
        fatal("combining network needs at least one port");
    unsigned endpoints = std::max(num_ports, num_endpoints);
    numStages = 1;
    while ((1u << numStages) < endpoints)
        ++numStages;
    endpointBits = numStages;
    unsigned switches = numStages * ((1u << numStages) / 2);
    switchFreeAt.assign(switches, 0);
    switchBusy.assign(switches, 0);
    conflictsStat.init(name_ + ".stage_conflicts", numStages);
    conflictCyclesStat.init(name_ + ".stage_conflict_cycles",
                            numStages);
    combinesStat.init(name_ + ".stage_combines", numStages);
    stageBusyStat.init(name_ + ".stage_busy_cycles", numStages);
}

unsigned
CombiningOmegaNetwork::switchAt(ProcId who, unsigned dest,
                                unsigned stage) const
{
    // Omega routing: after stage s the low s+1 position bits are
    // the top s+1 destination bits, the rest still source bits.
    unsigned n = 1u << endpointBits;
    unsigned pos = ((who << (stage + 1)) |
                    (dest >> (endpointBits - stage - 1))) & (n - 1);
    return stage * (n / 2) + (pos >> 1);
}

std::uint64_t
CombiningOmegaNetwork::residentKey(unsigned global_switch,
                                   SyncVarId var,
                                   CombineClass cls) const
{
    return (static_cast<std::uint64_t>(global_switch) << 36) |
           (static_cast<std::uint64_t>(cls) << 34) |
           static_cast<std::uint64_t>(var);
}

CombiningOmegaNetwork::Delivery
CombiningOmegaNetwork::inject(ProcId who, unsigned dest,
                              SyncVarId var, CombineClass cls,
                              std::uint64_t packet_id, Tick now)
{
    if (who >= portFreeAt.size())
        panic("port %u out of range", who);

    Tick inject = std::max(now, portFreeAt[who]);
    portFreeAt[who] = inject + portCycles;
    ++numTransactions;
    queueDelayStat += static_cast<double>(inject - now);
    portBusyStat += static_cast<double>(portCycles);

    Delivery d;
    Tick t = inject;
    for (unsigned s = 0; s < numStages; ++s) {
        unsigned sw = switchAt(who, dest, s);
        if (cls != CombineClass::none) {
            auto it = residents.find(residentKey(sw, var, cls));
            if (it != residents.end() && it->second.departAt > t) {
                // A same-variable packet is still queued in this
                // switch: merge into it instead of going further.
                combinesStat[s] += 1;
                d.combined = true;
                d.mergedWith = it->second.packet;
                d.stage = s;
                return d;
            }
        }
        if (switchFreeAt[sw] > t) {
            conflictsStat[s] += 1;
            conflictCyclesStat[s] +=
                static_cast<double>(switchFreeAt[sw] - t);
            queueDelayStat +=
                static_cast<double>(switchFreeAt[sw] - t);
            t = switchFreeAt[sw];
        }
        Tick depart = t + stageCycles;
        switchFreeAt[sw] = depart;
        switchBusy[sw] += stageCycles;
        stageBusyStat[s] += static_cast<double>(stageCycles);
        if (cls != CombineClass::none)
            residents[residentKey(sw, var, cls)] = {packet_id, depart};
        t = depart;
    }
    d.arrive = t;
    return d;
}

void
CombiningOmegaNetwork::holdResidents(ProcId who, unsigned dest,
                                     SyncVarId var, CombineClass cls,
                                     std::uint64_t packet_id,
                                     Tick until)
{
    if (cls == CombineClass::none)
        return;
    for (unsigned s = 0; s < numStages; ++s) {
        unsigned sw = switchAt(who, dest, s);
        auto it = residents.find(residentKey(sw, var, cls));
        if (it != residents.end() && it->second.packet == packet_id &&
            it->second.departAt < until)
            it->second.departAt = until;
    }
}

Tick
CombiningOmegaNetwork::busiestSwitchCycles(unsigned s) const
{
    unsigned per_stage = 1u << (endpointBits - 1);
    Tick best = 0;
    for (unsigned i = 0; i < per_stage; ++i)
        best = std::max(best, switchBusy[s * per_stage + i]);
    return best;
}

void
CombiningOmegaNetwork::sampleTimeline(Tracer &t, Tick at) const
{
    for (unsigned s = 0; s < numStages; ++s) {
        t.sample(SampleStream::netStageConflictCycles, s, at,
                 conflictCyclesStat[s]);
        t.sample(SampleStream::netStageCombines, s, at,
                 combinesStat[s]);
    }
}

void
CombiningOmegaNetwork::dumpStats(std::ostream &os) const
{
    stats::dump(os, numTransactions);
    stats::dump(os, queueDelayStat);
    stats::dump(os, portBusyStat);
    stats::dump(os, conflictsStat);
    stats::dump(os, conflictCyclesStat);
    stats::dump(os, combinesStat);
    stats::dump(os, stageBusyStat);
}

void
CombiningOmegaNetwork::registerStats(stats::Group &group) const
{
    group.add(numTransactions);
    group.add(queueDelayStat);
    group.add(portBusyStat);
    group.add(conflictsStat);
    group.add(conflictCyclesStat);
    group.add(combinesStat);
    group.add(stageBusyStat);
}

double
OmegaNetwork::utilization(Tick end_tick) const
{
    if (end_tick == 0 || portFreeAt.empty())
        return 0.0;
    double capacity =
        static_cast<double>(end_tick) * portFreeAt.size();
    return busyCyclesStat.value() / capacity;
}

void
OmegaNetwork::dumpStats(std::ostream &os) const
{
    stats::dump(os, numTransactions);
    stats::dump(os, queueDelayStat);
    stats::dump(os, busyCyclesStat);
}

void
OmegaNetwork::registerStats(stats::Group &group) const
{
    group.add(numTransactions);
    group.add(queueDelayStat);
    group.add(busyCyclesStat);
}

} // namespace sim
} // namespace psync
