/**
 * @file
 * Sync-fabric topology layer.
 *
 * Describes how a machine's synchronization fabric is composed —
 * which organization holds the variables, how processors cluster,
 * and what the per-level transport costs are — and builds the
 * component assembly from that description. Machine used to switch
 * directly on FabricKind and hardwire one flat organization per
 * kind; routing construction through this seam lets fabrics be
 * topology compositions (per-cluster local stages + a global stage,
 * a combining network in front of sync modules) while the two
 * original flat fabrics are assembled exactly as before.
 */

#ifndef PSYNC_SIM_TOPOLOGY_HH
#define PSYNC_SIM_TOPOLOGY_HH

#include <memory>
#include <vector>

#include "sim/bus.hh"
#include "sim/event_queue.hh"
#include "sim/memory.hh"
#include "sim/sync_fabric.hh"
#include "sim/tracing.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/**
 * Cluster description of one machine's synchronization domain: the
 * fabric organization plus every parameter the builder needs to
 * assemble it. Derived from MachineConfig (syncTopologyOf in
 * machine.hh); kept free of the full machine config so fabric
 * construction depends only on the synchronization-relevant slice.
 */
struct SyncTopology
{
    /** Organization holding the synchronization variables. */
    FabricKind fabric = FabricKind::registers;

    /** Processors in the machine (ports, images, cluster split). */
    unsigned numProcs = 8;

    /** Clusters of the hierarchical fabric. */
    unsigned numClusters = 4;

    /** Local cluster-bus occupancy per broadcast, cycles. */
    Tick clusterBusCycles = 1;

    /** Broadcast / global-stage occupancy per transaction. */
    Tick syncBusCycles = 1;

    /** Register-file capacity (registers and hierarchical kinds). */
    unsigned syncRegisters = 256;

    /** Enable pending-write coalescing. */
    bool coalesceWrites = true;

    /** Spin poll interval (memory-resident variables). */
    Tick pollIntervalCycles = 4;

    /** Spin on coherent cache copies (memory fabric). */
    bool cachedSpinning = true;

    /** Base address of the sync-variable region (memory fabric). */
    Addr syncVarBase = Addr(1) << 40;

    /** Sync modules behind the combining network. */
    unsigned syncModules = 8;

    /** Combining-network latency per switch stage. */
    Tick netStageCycles = 1;

    /** Combining-network min cycles between injections per port. */
    Tick netPortCycles = 1;

    /** Sync-module service time (combining fabric). */
    Tick syncServiceCycles = 4;

    /** Processors per cluster (last cluster may be smaller). */
    unsigned
    procsPerCluster() const
    {
        unsigned n = numClusters == 0 ? 1 : numClusters;
        return (numProcs + n - 1) / n;
    }

    /** Cluster a processor belongs to. */
    unsigned
    clusterOf(ProcId who) const
    {
        unsigned c = who / procsPerCluster();
        unsigned n = numClusters == 0 ? 1 : numClusters;
        return c < n ? c : n - 1;
    }
};

/**
 * The components one fabric description assembles into. The machine
 * takes ownership of all of them; `fabric` references the buses (and
 * the memory, for the memory-resident kind), so the owning machine
 * must destroy it first — Machine's member order guarantees that.
 */
struct FabricAssembly
{
    std::unique_ptr<SyncFabric> fabric;
    /**
     * Dedicated broadcast bus (registers kind) or the global
     * serialization stage (hierarchical kind); null otherwise.
     */
    std::unique_ptr<Bus> syncBus;
    /** Per-cluster local buses (hierarchical kind only). */
    std::vector<std::unique_ptr<Bus>> clusterBuses;
};

/**
 * Build the synchronization fabric `topo` describes. The two flat
 * kinds (memory, registers) are constructed exactly as the
 * pre-topology Machine did — same components, same names, same
 * argument values — so existing scenarios stay bit-identical.
 */
FabricAssembly buildSyncFabric(const SyncTopology &topo,
                               EventQueue &eq, Memory &mem,
                               Tracer *tracer);

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_TOPOLOGY_HH
