/**
 * @file
 * In-order processor model.
 *
 * A processor repeatedly fetches an iteration program from the
 * runtime's scheduler and interprets its ops. One memory or
 * synchronization operation is outstanding at a time (the machines
 * the paper targets are simple in-order designs). Cycle accounting
 * is split into compute, busy-wait (spin), synchronization
 * overhead, and data-access stall, which are the quantities the
 * paper's arguments are about.
 */

#ifndef PSYNC_SIM_PROCESSOR_HH
#define PSYNC_SIM_PROCESSOR_HH

#include <cstdint>
#include <functional>
#include <ostream>

#include "sim/cache.hh"
#include "sim/event_queue.hh"
#include "sim/program.hh"
#include "sim/stats.hh"
#include "sim/sync_fabric.hh"
#include "sim/tracing.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** One simulated processor. */
class Processor
{
  public:
    /**
     * Scheduler hook: the processor asks for its next program and
     * receives it (or nullptr when the work is exhausted) through
     * the callback, possibly after simulated dispatch latency.
     */
    using Dispatch =
        std::function<void(ProcId,
                           std::function<void(const Program *)>)>;

    Processor(EventQueue &eq, ProcId id, SyncFabric &fabric,
              CacheSystem &caches, TraceSink *sink,
              Tracer *tracer = nullptr);

    /** Begin the fetch-execute loop. */
    void start(Dispatch dispatch);

    ProcId id() const { return id_; }

    /** Tick at which this processor ran out of work. */
    Tick haltTick() const { return haltTick_; }

    /** True once the processor has drained all its work. */
    bool halted() const { return halted_; }

    /**
     * What this processor is doing right now. Live state for the
     * timeline sampler, maintained only while a tracer is attached
     * (always `dispatch` otherwise); the machine refines `spin`
     * into `parked` by asking the fabric.
     */
    ProcActivity activity() const { return activity_; }

    Tick computeCycles() const { return computeCycles_; }
    Tick spinCycles() const { return spinCycles_; }
    Tick syncOverheadCycles() const { return syncOverheadCycles_; }
    Tick stallCycles() const { return stallCycles_; }

    std::uint64_t syncOpsIssued() const { return syncOpsIssued_; }
    std::uint64_t programsRun() const { return programsRun_; }
    std::uint64_t marksSkipped() const { return marksSkipped_; }

    void dumpStats(std::ostream &os) const;

  private:
    void fetchNext();
    void beginProgram(const Program *program);
    void step();

    /** Emit a non-empty phase interval to the attached tracer. */
    void
    tracePhase(TracePhase phase, Tick start, Tick end)
    {
#ifndef PSYNC_TRACING_DISABLED
        if (tracer && end > start)
            tracer->phaseInterval(id_, phase, start, end);
#else
        (void)phase;
        (void)start;
        (void)end;
#endif
    }

    /**
     * Emit one executed-op span (issue through completion) to the
     * attached tracer. Empty spans are dropped, matching the
     * phase-interval contract.
     */
    void
    traceOpSpan(std::uint32_t op_id, OpKind kind, SyncVarId var,
                std::uint64_t iter, Tick start, Tick end)
    {
#ifndef PSYNC_TRACING_DISABLED
        if (tracer && end > start)
            tracer->opSpan(id_, iter, op_id, kind, var, start, end);
#else
        (void)op_id;
        (void)kind;
        (void)var;
        (void)iter;
        (void)start;
        (void)end;
#endif
    }

    /** Update live activity state (no-op when untraced). */
    void
    setActivity(ProcActivity a)
    {
#ifndef PSYNC_TRACING_DISABLED
        if (tracer)
            activity_ = a;
#else
        (void)a;
#endif
    }

    /** Iteration an op belongs to (iterTag overrides program iter). */
    std::uint64_t
    opIter(const Op &op) const
    {
        return op.iterTag ? op.iterTag : current->iter;
    }

    void execCompute(const Op &op);
    void execData(const Op &op);
    void execWaitGE(const Op &op);
    void execWrite(const Op &op);
    void execFetchInc(const Op &op);
    void execPcMark(const Op &op);
    void execPcTransfer(const Op &op);
    void execCtrBarrier(const Op &op);
    void execKeyed(const Op &op);

    EventQueue &eventq;
    ProcId id_;
    SyncFabric &fabric;
    CacheSystem &caches;
    TraceSink *trace;
    Tracer *tracer;

    Dispatch dispatch_;
    const Program *current = nullptr;
    size_t opIndex = 0;

    /** Improved-primitive ownership flag (Fig. 4.3), per program. */
    bool ownedPc = false;

    bool halted_ = false;
    Tick haltTick_ = 0;
    ProcActivity activity_ = ProcActivity::dispatch;

    Tick computeCycles_ = 0;
    Tick spinCycles_ = 0;
    Tick syncOverheadCycles_ = 0;
    Tick stallCycles_ = 0;
    std::uint64_t syncOpsIssued_ = 0;
    std::uint64_t programsRun_ = 0;
    std::uint64_t marksSkipped_ = 0;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_PROCESSOR_HH
