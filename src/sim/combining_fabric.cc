#include "sim/combining_fabric.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psync {
namespace sim {

CombiningSyncFabric::CombiningSyncFabric(EventQueue &eq,
                                         unsigned num_ports,
                                         unsigned num_modules,
                                         Tick stage_cycles,
                                         Tick port_cycles,
                                         Tick service_cycles,
                                         Tracer *trace)
    : eventq(eq),
      numModules_(num_modules),
      serviceCycles(service_cycles),
      tracer(trace),
      network("sync_net", num_ports, num_modules, stage_cycles,
              port_cycles),
      moduleFreeAt(num_modules, 0),
      readsStat("syncfab.comb.reads"),
      writesStat("syncfab.comb.writes"),
      rmwsStat("syncfab.comb.rmws"),
      pollsStat("syncfab.comb.polls"),
      parkedStat("syncfab.comb.parked_waits"),
      wakeupsStat("syncfab.comb.wakeups"),
      moduleDelayStat("syncfab.comb.module_queue_delay"),
      moduleOpsStat("syncfab.comb.module_ops", num_modules)
{
    if (num_modules == 0)
        fatal("combining fabric needs at least one sync module");
}

SyncVarId
CombiningSyncFabric::allocate(unsigned count, SyncWord init_value)
{
    SyncVarId first = numVars;
    values.resize(numVars + count, init_value);
    numVars += count;
    return first;
}

std::uint32_t
CombiningSyncFabric::allocOp()
{
    std::uint32_t slot;
    if (freeOps != noOp) {
        slot = freeOps;
        freeOps = ops[slot].next;
        ops[slot] = OpState{};
    } else {
        slot = static_cast<std::uint32_t>(ops.size());
        ops.emplace_back();
    }
    return slot;
}

void
CombiningSyncFabric::freeOp(std::uint32_t slot)
{
    ops[slot].onWait = WaitHandler{};
    ops[slot].onDone = DoneHandler{};
    ops[slot].onValue = ValueHandler{};
    ops[slot].next = freeOps;
    freeOps = slot;
}

bool
CombiningSyncFabric::route(std::uint32_t slot, CombineClass cls)
{
    OpState &op = ops[slot];
    auto d = network.inject(op.who, moduleOf(op.var), op.var, cls,
                            slot, eventq.now());
    if (d.combined) {
        // The resident packet's slot is still live: roots are freed
        // only by their completion event (after every departure
        // horizon a merge could test), and parked polls keep their
        // slot until woken.
        std::uint32_t root =
            ops[static_cast<std::uint32_t>(d.mergedWith)].rootSlot;
        op.rootSlot = root;
        // A parked poll can be woken (and its slot recycled) before
        // its wait-buffer horizon expires, so a stale chain may
        // surface a completion in the past; clamp to now so the
        // decombined reply always fires in the future.
        op.completion = std::max(ops[root].completion, eventq.now()) +
                        network.stageLatency();
        return true;
    }
    unsigned m = moduleOf(op.var);
    Tick start = std::max(d.arrive, moduleFreeAt[m]);
    moduleDelayStat += static_cast<double>(start - d.arrive);
    Tick done = start + serviceCycles;
    moduleFreeAt[m] = done;
    moduleOpsStat[m] += 1;
    op.rootSlot = slot;
    op.completion = done + network.returnCycles();
    // The root's wait-buffer entries stay live until its reply
    // decombines on the way back: later packets merge into it
    // during the whole round trip. Roots fire (and free their
    // slot) strictly after this horizon, so merged references
    // never dangle.
    network.holdResidents(op.who, m, op.var, cls, slot,
                          op.completion);
    return false;
}

void
CombiningSyncFabric::fireOp(std::uint32_t slot)
{
    OpState &op = ops[slot];
    switch (op.kind) {
      case OpState::Kind::read: {
        ValueHandler handler = std::move(op.onValue);
        SyncWord value = op.value;
        freeOp(slot);
        handler(value);
        return;
      }
      case OpState::Kind::write: {
        DoneHandler handler = std::move(op.onDone);
        freeOp(slot);
        handler();
        return;
      }
      case OpState::Kind::rmw: {
        ValueHandler handler = std::move(op.onValue);
        SyncWord value = op.value;
        freeOp(slot);
        handler(value);
        return;
      }
      case OpState::Kind::poll: {
        WaitHandler handler = std::move(op.onWait);
        Tick waited = eventq.now() - op.started;
        if (waited > 0) {
            PSYNC_TRACE(tracer, waitEdge(op.var, op.who, op.started,
                                         eventq.now()));
        }
        freeOp(slot);
        handler(waited);
        return;
      }
    }
}

void
CombiningSyncFabric::release(SyncVarId var, SyncWord value, Tick done)
{
    auto it = parked.find(var);
    if (it == parked.end())
        return;
    auto &list = it->second;
    std::vector<std::uint32_t> still;
    still.reserve(list.size());
    for (std::uint32_t slot : list) {
        OpState &w = ops[slot];
        if (value >= w.value) {
            ++wakeupsStat;
            parkedProcs.erase(w.who);
            w.completion = done;
            eventq.schedule(done, [this, slot]() { fireOp(slot); });
        } else {
            still.push_back(slot);
        }
    }
    if (still.empty())
        parked.erase(it);
    else
        list.swap(still);
}

void
CombiningSyncFabric::waitGE(ProcId who, SyncVarId var,
                            SyncWord threshold, WaitHandler on_done)
{
    ++pollsStat;
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u wait v%u >= %llu (combining fabric)", who,
                  var, static_cast<unsigned long long>(threshold));
    PSYNC_TRACE(tracer, syncVarOp(var, "wait", who, eventq.now()));
    std::uint32_t slot = allocOp();
    OpState &op = ops[slot];
    op.kind = OpState::Kind::poll;
    op.who = who;
    op.var = var;
    op.value = threshold;
    op.started = eventq.now();
    op.onWait = std::move(on_done);
    // The poll travels to the module either way; concurrent polls
    // of one hot word merge in the switches like fetch&adds do.
    route(slot, CombineClass::read);
    if (values[var] >= threshold) {
        Tick completion = ops[slot].completion;
        eventq.schedule(completion, [this, slot]() { fireOp(slot); });
        return;
    }
    // Unsatisfied: park module-side. The slot stays allocated (it
    // anchors the wait handler and keeps combining references to
    // this packet valid) until release() schedules its wake.
    ++parkedStat;
    parkedProcs.insert(who);
    parked[var].push_back(slot);
}

void
CombiningSyncFabric::read(ProcId who, SyncVarId var,
                          ValueHandler on_done)
{
    ++readsStat;
    PSYNC_TRACE(tracer, syncVarOp(var, "poll", who, eventq.now()));
    std::uint32_t slot = allocOp();
    OpState &op = ops[slot];
    op.kind = OpState::Kind::read;
    op.who = who;
    op.var = var;
    op.value = values[var];
    op.onValue = std::move(on_done);
    route(slot, CombineClass::read);
    eventq.schedule(ops[slot].completion,
                    [this, slot]() { fireOp(slot); });
}

void
CombiningSyncFabric::write(ProcId who, SyncVarId var, SyncWord value,
                           DoneHandler on_done)
{
    ++writesStat;
    PSYNC_DPRINTF(eventq, Sync,
                  "proc %u write v%u = %llu (combining fabric)", who,
                  var, static_cast<unsigned long long>(value));
    PSYNC_TRACE(tracer, syncVarOp(var, "write", who, eventq.now()));
    std::uint32_t slot = allocOp();
    OpState &op = ops[slot];
    op.kind = OpState::Kind::write;
    op.who = who;
    op.var = var;
    op.onDone = std::move(on_done);
    // Writes are not combined: each one visits the module, and the
    // writer blocks until the word is globally visible (the memory
    // organization's correctness requirement (1), section 2.2).
    route(slot, CombineClass::none);
    values[var] = value;
    release(var, values[var], ops[slot].completion);
    eventq.schedule(ops[slot].completion,
                    [this, slot]() { fireOp(slot); });
}

void
CombiningSyncFabric::fetchInc(ProcId who, SyncVarId var,
                              ValueHandler on_done)
{
    ++rmwsStat;
    PSYNC_TRACE(tracer, syncVarOp(var, "rmw", who, eventq.now()));
    std::uint32_t slot = allocOp();
    OpState &op = ops[slot];
    op.kind = OpState::Kind::rmw;
    op.who = who;
    op.var = var;
    op.onValue = std::move(on_done);
    route(slot, CombineClass::fetchAdd);
    // Pre-values are assigned in injection (event) order, so a
    // combined tree hands out the same sequence a serialized module
    // would — combining changes timing, never values.
    SyncWord old_value = values[var];
    values[var] = old_value + 1;
    ops[slot].value = old_value;
    release(var, values[var], ops[slot].completion);
    eventq.schedule(ops[slot].completion,
                    [this, slot]() { fireOp(slot); });
}

SyncWord
CombiningSyncFabric::peek(SyncVarId var) const
{
    return values[var];
}

void
CombiningSyncFabric::poke(SyncVarId var, SyncWord value)
{
    values[var] = value;
}

double
CombiningSyncFabric::hotSpotRatio() const
{
    double total = moduleOpsStat.total();
    if (total == 0)
        return 0.0;
    double uniform = total / numModules_;
    return moduleOpsStat.maxValue() / uniform;
}

void
CombiningSyncFabric::sampleTimeline(Tracer &t, Tick at) const
{
    for (const auto &entry : parked) {
        if (!entry.second.empty()) {
            t.sample(SampleStream::syncVarWaiters, entry.first, at,
                     static_cast<double>(entry.second.size()));
        }
    }
    network.sampleTimeline(t, at);
}

bool
CombiningSyncFabric::isParked(ProcId who) const
{
    return parkedProcs.count(who) > 0;
}

void
CombiningSyncFabric::dumpStats(std::ostream &os) const
{
    stats::dump(os, readsStat);
    stats::dump(os, writesStat);
    stats::dump(os, rmwsStat);
    stats::dump(os, pollsStat);
    stats::dump(os, parkedStat);
    stats::dump(os, wakeupsStat);
    stats::dump(os, moduleDelayStat);
    stats::dump(os, moduleOpsStat);
    network.dumpStats(os);
}

void
CombiningSyncFabric::registerStats(stats::Group &group) const
{
    group.add(readsStat);
    group.add(writesStat);
    group.add(rmwsStat);
    group.add(pollsStat);
    group.add(parkedStat);
    group.add(wakeupsStat);
    group.add(moduleDelayStat);
    group.add(moduleOpsStat);
    network.registerStats(group);
}

} // namespace sim
} // namespace psync
