/**
 * @file
 * Simulator view of the backend-neutral synchronization IR.
 *
 * The op vocabulary itself lives in ir/program.hh (shared with the
 * native backend and transformed by the ir pass pipeline); this
 * header re-exports it under the historical sim:: names so the
 * simulator and its tests keep compiling unchanged, and adds the
 * TraceSink consumer interface, which is genuinely simulator/
 * executor-side (it observes execution, not programs).
 */

#ifndef PSYNC_SIM_PROGRAM_HH
#define PSYNC_SIM_PROGRAM_HH

#include <cstdint>

#include "ir/program.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

using OpKind = ir::OpKind;
using Op = ir::Op;
using Program = ir::Program;
using ProgramBuilder = ir::ProgramBuilder;
using ir::disassemble;
using ir::opKindName;

/** Event-trace consumer; see core/trace_check for the verifier. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** A statement instance began executing. */
    virtual void
    stmtStart(std::uint32_t stmt, std::uint64_t iter, Tick when)
    {
        (void)stmt; (void)iter; (void)when;
    }

    /** A statement instance finished (effects globally visible). */
    virtual void
    stmtEnd(std::uint32_t stmt, std::uint64_t iter, Tick when)
    {
        (void)stmt; (void)iter; (void)when;
    }

    /** A tagged data access completed. */
    virtual void
    access(std::uint32_t stmt, std::uint16_t ref, std::uint64_t iter,
           Addr addr, bool is_write, Tick start, Tick end)
    {
        (void)stmt; (void)ref; (void)iter; (void)addr;
        (void)is_write; (void)start; (void)end;
    }
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_PROGRAM_HH
