/**
 * @file
 * Lightweight statistics package modeled on gem5's: named scalar,
 * vector, and distribution statistics registered with a group and
 * dumped as text. The simulator components own their stats; run
 * results snapshot them into plain structs (see core/metrics.hh).
 */

#ifndef PSYNC_SIM_STATS_HH
#define PSYNC_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace psync {
namespace sim {
namespace stats {

/**
 * A named, monotonically accumulated scalar statistic. The only
 * mutators are accumulation (+=, ++) and reset(): between two
 * resets the value never decreases, so deltas across dumps are
 * meaningful. Components that need to overwrite a level (a depth, a
 * high-water mark) use Gauge instead.
 */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string stat_name) : name_(std::move(stat_name)) {}

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1; return *this; }

    void reset() { value_ = 0; }

    double value() const { return value_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    double value_ = 0;
};

/**
 * A named scalar that tracks a level rather than an accumulation:
 * set() overwrites, updateMax() keeps a high-water mark. Split from
 * Scalar so the accumulate-only contract above stays honest.
 */
class Gauge
{
  public:
    Gauge() = default;
    explicit Gauge(std::string stat_name) : name_(std::move(stat_name)) {}

    void set(double v) { value_ = v; }
    void updateMax(double v) { value_ = std::max(value_, v); }
    void reset() { value_ = 0; }

    double value() const { return value_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    double value_ = 0;
};

/** A fixed-size vector of scalar values (e.g., one per processor). */
class Vector
{
  public:
    Vector() = default;
    Vector(std::string stat_name, size_t n)
        : name_(std::move(stat_name)), values_(n, 0.0)
    {}

    void init(std::string stat_name, size_t n)
    {
        name_ = std::move(stat_name);
        values_.assign(n, 0.0);
    }

    double &operator[](size_t i) { return values_[i]; }
    double operator[](size_t i) const { return values_[i]; }

    size_t size() const { return values_.size(); }
    void reset() { std::fill(values_.begin(), values_.end(), 0.0); }

    double total() const
    {
        double sum = 0;
        for (double v : values_)
            sum += v;
        return sum;
    }

    double maxValue() const
    {
        double m = 0;
        for (double v : values_)
            m = std::max(m, v);
        return m;
    }

    double mean() const
    {
        return values_.empty() ? 0.0 : total() / values_.size();
    }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<double> values_;
};

/**
 * A simple sampled distribution tracking count, sum, min, max and
 * sum of squares, enough for mean and variance reporting.
 */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(std::string stat_name)
        : name_(std::move(stat_name))
    {}

    void
    sample(double v, std::uint64_t n = 1)
    {
        count_ += n;
        sum_ += v * n;
        squares_ += v * v * n;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = squares_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }

    double
    variance() const
    {
        if (count_ < 2)
            return 0.0;
        double m = mean();
        return squares_ / count_ - m * m;
    }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double squares_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Dump helpers used by Machine::dumpStats. */
void dump(std::ostream &os, const Scalar &s);
void dump(std::ostream &os, const Gauge &g);
void dump(std::ostream &os, const Vector &v);
void dump(std::ostream &os, const Distribution &d);

/**
 * A registry of statistics owned elsewhere. Components register
 * their stats once (registerStats) and the group walks them for
 * text or machine-readable output; dumpJson() emits one JSON
 * object keyed by statistic name, the record format the benches'
 * --json flag writes.
 */
class Group
{
  public:
    void add(const Scalar &s) { scalars_.push_back(&s); }
    void add(const Gauge &g) { gauges_.push_back(&g); }
    void add(const Vector &v) { vectors_.push_back(&v); }
    void add(const Distribution &d) { dists_.push_back(&d); }

    size_t size() const
    {
        return scalars_.size() + gauges_.size() + vectors_.size() +
               dists_.size();
    }

    /** Text dump, one stat per line (same format as dump()). */
    void dump(std::ostream &os) const;

    /**
     * JSON dump: {"name": value, ...}; vectors become
     * {"total":..,"mean":..,"max":..,"values":[..]}, distributions
     * {"count":..,"mean":..,"min":..,"max":..}.
     */
    void dumpJson(std::ostream &os) const;

  private:
    std::vector<const Scalar *> scalars_;
    std::vector<const Gauge *> gauges_;
    std::vector<const Vector *> vectors_;
    std::vector<const Distribution *> dists_;
};

} // namespace stats
} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_STATS_HH
