/**
 * @file
 * Fundamental simulator types: ticks, identifiers, and the packed
 * process-counter word used by the process-oriented synchronization
 * scheme (Su & Yew, ISCA 1989, section 4 and 6).
 */

#ifndef PSYNC_SIM_TYPES_HH
#define PSYNC_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace psync {
namespace sim {

/** Simulated time, in processor clock cycles. */
using Tick = std::uint64_t;

/** A tick value that compares greater than any reachable time. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Identifier of a simulated processor, 0-based. */
using ProcId = std::uint32_t;

/** Identifier of a synchronization variable within a fabric. */
using SyncVarId = std::uint32_t;

/** Simulated byte address in the shared memory. */
using Addr = std::uint64_t;

/** Value type stored in synchronization variables. */
using SyncWord = std::uint64_t;

/**
 * Packed process-counter word.
 *
 * The paper defines a PC as the pair <owner, step> with the ordering
 * <w,x> >= <y,z> iff w > y, or w == y and x >= z. Packing the owner
 * into the upper 32 bits makes that ordering the plain unsigned
 * 64-bit comparison, which is what a real synchronization register
 * would implement (section 6: the two fields need not even be
 * updated simultaneously).
 */
class PcWord
{
  public:
    PcWord() = default;

    /** Build a PC word from an (owner, step) pair. */
    static constexpr SyncWord
    pack(std::uint32_t owner, std::uint32_t step)
    {
        return (static_cast<SyncWord>(owner) << 32) |
               static_cast<SyncWord>(step);
    }

    /** Extract the owner (process id) field. */
    static constexpr std::uint32_t
    owner(SyncWord word)
    {
        return static_cast<std::uint32_t>(word >> 32);
    }

    /** Extract the step field. */
    static constexpr std::uint32_t
    step(SyncWord word)
    {
        return static_cast<std::uint32_t>(word & 0xffffffffu);
    }
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_TYPES_HH
