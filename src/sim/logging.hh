/**
 * @file
 * Minimal gem5-style logging and error-termination helpers.
 *
 * panic() is for internal invariant violations (simulator bugs);
 * fatal() is for user configuration errors; warn()/inform() emit
 * status messages without stopping the simulation.
 *
 * PSYNC_DPRINTF is gem5's DPRINTF: tick-stamped debug printing
 * filtered by component at runtime. The active components come from
 * the PSYNC_DEBUG environment variable, a comma-separated list of
 * component names ("sync,bus", or "all"); with the variable unset
 * every site reduces to one branch on a cached mask. Builds
 * configured with -DPSYNC_DEBUG_LOGGING=OFF (and plain Release
 * builds) compile the sites out entirely.
 */

#ifndef PSYNC_SIM_LOGGING_HH
#define PSYNC_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

#include "sim/types.hh"

namespace psync {
namespace sim {

/** Abort with a message: something that should never happen did. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with a message: the user asked for something unsupported. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style string into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Debug components, one bit each. The PSYNC_DEBUG names are the
 * lowercase forms: "sync", "bus", "mem", "proc", "sched", "cache",
 * "net", plus "all".
 */
enum DebugComponent : unsigned
{
    DebugSync = 1u << 0,
    DebugBus = 1u << 1,
    DebugMem = 1u << 2,
    DebugProc = 1u << 3,
    DebugSched = 1u << 4,
    DebugCache = 1u << 5,
    DebugNet = 1u << 6,
    DebugAll = (1u << 7) - 1,
};

/**
 * Parse a PSYNC_DEBUG-style filter ("sync,bus", "all", "") into a
 * component mask. Unknown names are skipped; when `unknown` is
 * non-null the first unrecognized token is stored there.
 */
unsigned parseDebugFilter(const std::string &spec,
                          std::string *unknown = nullptr);

/**
 * The active component mask. Initialized from PSYNC_DEBUG on first
 * use (warning once about unknown names), overridable with
 * setDebugMask().
 */
unsigned debugMask();

/** Override the active mask (tests, programmatic enabling). */
void setDebugMask(unsigned mask);

/** True when component `c` is selected. */
inline bool
debugEnabled(DebugComponent c)
{
    return (debugMask() & c) != 0;
}

/** Backend of PSYNC_DPRINTF: "<tick>: <component>: <message>". */
void debugPrint(const char *component, Tick tick, const char *fmt,
                ...) __attribute__((format(printf, 3, 4)));

} // namespace sim
} // namespace psync

/**
 * Tick-stamped, component-filtered debug printing:
 *
 *     PSYNC_DPRINTF(eventq, Bus, "%s grant proc %u", name, who);
 *
 * `eq` is anything with a now() returning a Tick; `component` is
 * the suffix of a DebugComponent enumerator (Sync, Bus, Mem, Proc,
 * Sched, Cache, Net).
 */
#ifdef PSYNC_DEBUG_LOGGING
#define PSYNC_DPRINTF(eq, component, ...)                              \
    do {                                                               \
        if (::psync::sim::debugEnabled(::psync::sim::Debug##component)) \
            ::psync::sim::debugPrint(#component, (eq).now(),           \
                                     __VA_ARGS__);                     \
    } while (0)
#else
#define PSYNC_DPRINTF(eq, component, ...)                              \
    do {                                                               \
    } while (0)
#endif

#endif // PSYNC_SIM_LOGGING_HH
