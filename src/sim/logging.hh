/**
 * @file
 * Minimal gem5-style logging and error-termination helpers.
 *
 * panic() is for internal invariant violations (simulator bugs);
 * fatal() is for user configuration errors; warn()/inform() emit
 * status messages without stopping the simulation.
 */

#ifndef PSYNC_SIM_LOGGING_HH
#define PSYNC_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace psync {
namespace sim {

/** Abort with a message: something that should never happen did. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with a message: the user asked for something unsupported. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style string into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_LOGGING_HH
