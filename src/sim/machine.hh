/**
 * @file
 * Machine configuration and assembly.
 *
 * A Machine is one small-scale shared-memory multiprocessor of the
 * class the paper targets (Cray X-MP, Alliant FX/8, Encore
 * Multimax): P in-order processors, a shared data bus in front of
 * interleaved memory modules, and either memory-resident
 * synchronization variables or a dedicated synchronization-register
 * file with a broadcast bus (section 6).
 */

#ifndef PSYNC_SIM_MACHINE_HH
#define PSYNC_SIM_MACHINE_HH

#include <memory>
#include <ostream>
#include <vector>

#include "sim/bus.hh"
#include "sim/cache.hh"
#include "sim/event_queue.hh"
#include "sim/memory.hh"
#include "sim/omega_network.hh"
#include "sim/processor.hh"
#include "sim/program.hh"
#include "sim/sync_fabric.hh"
#include "sim/topology.hh"
#include "sim/types.hh"

namespace psync {
namespace sim {

/** Processor-to-memory transport choice. */
enum class InterconnectKind
{
    /** Single shared bus — the paper's small-scale machines. */
    bus,
    /** Multistage network — Cedar/RP3-class large machines. */
    omega,
};

/** Printable interconnect name. */
const char *interconnectKindName(InterconnectKind kind);

/** Full machine configuration. */
struct MachineConfig
{
    /** Number of processors. */
    unsigned numProcs = 8;

    /**
     * Event-core implementation. Both cores execute the identical
     * (when, seq) order; `heap` is the reference used by the
     * equivalence tests.
     */
    EventCoreKind eventCore = EventCoreKind::calendar;

    /** How processors reach memory. */
    InterconnectKind interconnect = InterconnectKind::bus;

    /** Omega network: per-stage latency. */
    Tick netStageCycles = 1;

    /** Omega network: min cycles between injections per port. */
    Tick netPortCycles = 1;

    /** Private data caches (write-through invalidate). */
    CacheConfig cache;

    /** Where synchronization variables live. */
    FabricKind fabric = FabricKind::registers;

    /** Hardware synchronization registers (register fabric). */
    unsigned syncRegisters = 256;

    /** Enable pending-write coalescing on the sync bus. */
    bool coalesceWrites = true;

    /** Processor clusters (hierarchical fabric). */
    unsigned numClusters = 4;

    /** Cluster-bus occupancy per local broadcast, cycles. */
    Tick clusterBusCycles = 1;

    /** Data-bus occupancy per transaction, cycles. */
    Tick dataBusCycles = 1;

    /** Sync-bus occupancy per broadcast, cycles. */
    Tick syncBusCycles = 1;

    /** Spin poll interval for memory-resident sync vars. */
    Tick pollIntervalCycles = 4;

    /**
     * Memory-resident sync vars spin on coherent cache copies
     * (re-fetch only on invalidation) instead of polling memory
     * every interval. The E10 bench contrasts both.
     */
    bool cachedSpinning = true;

    /** Shared-memory organization. */
    MemoryConfig memory;

    /** Base address of the sync-variable region (memory fabric). */
    Addr syncVarBase = Addr(1) << 40;

    /**
     * Timeline sampling interval, in cycles (0 = off). When nonzero
     * and a tracer is attached, Machine::run executes the event
     * queue in interval-sized chunks and emits one batch of
     * Tracer::sample calls per boundary (plus a baseline sample at
     * the start tick and a final one at drain). Chunking pauses and
     * resumes the queue between the same (when, seq)-ordered
     * events, so a sampled run is cycle-identical to an unsampled
     * one.
     */
    Tick timelineInterval = 0;
};

/**
 * The synchronization-domain slice of a machine config: everything
 * buildSyncFabric needs. The combining fabric's sync modules mirror
 * the machine's memory organization (same interleave, same service
 * time) — the network in front of them is what differs.
 */
inline SyncTopology
syncTopologyOf(const MachineConfig &cfg)
{
    SyncTopology topo;
    topo.fabric = cfg.fabric;
    topo.numProcs = cfg.numProcs;
    topo.numClusters = cfg.numClusters;
    topo.clusterBusCycles = cfg.clusterBusCycles;
    topo.syncBusCycles = cfg.syncBusCycles;
    topo.syncRegisters = cfg.syncRegisters;
    topo.coalesceWrites = cfg.coalesceWrites;
    topo.pollIntervalCycles = cfg.pollIntervalCycles;
    topo.cachedSpinning = cfg.cachedSpinning;
    topo.syncVarBase = cfg.syncVarBase;
    topo.syncModules = cfg.memory.numModules;
    topo.netStageCycles = cfg.netStageCycles;
    topo.netPortCycles = cfg.netPortCycles;
    topo.syncServiceCycles = cfg.memory.serviceCycles;
    return topo;
}

/** An assembled multiprocessor. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg,
                     TraceSink *trace = nullptr,
                     Tracer *tracer = nullptr);

    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return config_; }

    EventQueue &eventq() { return eventq_; }
    SyncFabric &fabric() { return *fabric_; }
    Memory &memory() { return *memory_; }
    CacheSystem &caches() { return *caches_; }

    /** The processor-memory transport (bus or network). */
    Interconnect &dataNet() { return *dataNet_; }

    /** The data bus, or null when the interconnect is a network. */
    Bus *dataBus() { return dynamic_cast<Bus *>(dataNet_.get()); }

    /** Sync bus; null when the fabric is memory-resident. */
    Bus *syncBus() { return syncBus_.get(); }

    /** Per-cluster local sync buses (hierarchical fabric only). */
    const std::vector<std::unique_ptr<Bus>> &
    clusterBuses() const
    {
        return clusterBuses_;
    }

    Processor &proc(ProcId id) { return *processors_[id]; }
    unsigned numProcs() const { return config_.numProcs; }

    /**
     * Start every processor on the given dispatcher and run to
     * completion (or the tick limit).
     * @return true if all work drained, false on tick-limit stop
     *         (treat as deadlock in the simulated synchronization).
     */
    bool run(Processor::Dispatch dispatch, Tick limit = maxTick);

    /** Last tick at which any processor halted. */
    Tick completionTick() const;

    /**
     * Emit one batch of timeline samples (every SampleStream, all
     * components) to the attached tracer at tick `at`. Driven by
     * run() at interval boundaries; exposed for tests.
     */
    void sampleTimeline(Tick at);

    void dumpStats(std::ostream &os) const;

    /** Register every component's statistics with a walker group. */
    void registerStats(stats::Group &group) const;

  private:
    /** Run the queue in interval chunks, sampling at boundaries. */
    bool runSampled(Tick limit);

    /** True once every processor has drained its work. */
    bool allHalted() const;

    MachineConfig config_;
    Tracer *tracer_;
    EventQueue eventq_;
    std::unique_ptr<Interconnect> dataNet_;
    std::unique_ptr<Bus> syncBus_;
    std::vector<std::unique_ptr<Bus>> clusterBuses_;
    std::unique_ptr<Memory> memory_;
    std::unique_ptr<CacheSystem> caches_;
    std::unique_ptr<SyncFabric> fabric_;
    std::vector<std::unique_ptr<Processor>> processors_;
};

} // namespace sim
} // namespace psync

#endif // PSYNC_SIM_MACHINE_HH
