#include "sim/stats.hh"

#include <cmath>
#include <iomanip>

namespace psync {
namespace sim {
namespace stats {

void
dump(std::ostream &os, const Scalar &s)
{
    os << std::left << std::setw(40) << s.name() << " " << s.value()
       << "\n";
}

void
dump(std::ostream &os, const Gauge &g)
{
    os << std::left << std::setw(40) << g.name() << " " << g.value()
       << "\n";
}

void
dump(std::ostream &os, const Vector &v)
{
    os << std::left << std::setw(40) << v.name() << " total=" << v.total()
       << " mean=" << v.mean() << " max=" << v.maxValue() << "\n";
}

void
dump(std::ostream &os, const Distribution &d)
{
    os << std::left << std::setw(40) << d.name() << " n=" << d.count()
       << " mean=" << d.mean() << " min=" << d.minValue()
       << " max=" << d.maxValue() << "\n";
}

namespace {

/**
 * Emit a JSON number: integral values print without a fraction so
 * cycle counts survive a parse/print round trip textually.
 */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::abs(v) < 9.007199254740992e15) {
        os << static_cast<long long>(v);
    } else {
        std::ostream::fmtflags flags = os.flags();
        os << std::setprecision(17) << v;
        os.flags(flags);
    }
}

/** Escape a stat name for use as a JSON string. */
void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            os << c;
        }
    }
    os << '"';
}

} // namespace

void
Group::dump(std::ostream &os) const
{
    for (const Scalar *s : scalars_)
        stats::dump(os, *s);
    for (const Gauge *g : gauges_)
        stats::dump(os, *g);
    for (const Vector *v : vectors_)
        stats::dump(os, *v);
    for (const Distribution *d : dists_)
        stats::dump(os, *d);
}

void
Group::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    auto key = [&](const std::string &name) {
        if (!first)
            os << ",";
        first = false;
        jsonString(os, name);
        os << ":";
    };
    for (const Scalar *s : scalars_) {
        key(s->name());
        jsonNumber(os, s->value());
    }
    for (const Gauge *g : gauges_) {
        key(g->name());
        jsonNumber(os, g->value());
    }
    for (const Vector *v : vectors_) {
        key(v->name());
        os << "{\"total\":";
        jsonNumber(os, v->total());
        os << ",\"mean\":";
        jsonNumber(os, v->mean());
        os << ",\"max\":";
        jsonNumber(os, v->maxValue());
        os << ",\"values\":[";
        for (size_t i = 0; i < v->size(); ++i) {
            if (i)
                os << ",";
            jsonNumber(os, (*v)[i]);
        }
        os << "]}";
    }
    for (const Distribution *d : dists_) {
        key(d->name());
        os << "{\"count\":";
        jsonNumber(os, static_cast<double>(d->count()));
        os << ",\"mean\":";
        jsonNumber(os, d->mean());
        os << ",\"min\":";
        jsonNumber(os, d->minValue());
        os << ",\"max\":";
        jsonNumber(os, d->maxValue());
        os << "}";
    }
    os << "}";
}

} // namespace stats
} // namespace sim
} // namespace psync
