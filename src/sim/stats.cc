#include "sim/stats.hh"

#include <iomanip>

namespace psync {
namespace sim {
namespace stats {

void
dump(std::ostream &os, const Scalar &s)
{
    os << std::left << std::setw(40) << s.name() << " " << s.value()
       << "\n";
}

void
dump(std::ostream &os, const Vector &v)
{
    os << std::left << std::setw(40) << v.name() << " total=" << v.total()
       << " mean=" << v.mean() << " max=" << v.maxValue() << "\n";
}

void
dump(std::ostream &os, const Distribution &d)
{
    os << std::left << std::setw(40) << d.name() << " n=" << d.count()
       << " mean=" << d.mean() << " min=" << d.minValue()
       << " max=" << d.maxValue() << "\n";
}

} // namespace stats
} // namespace sim
} // namespace psync
